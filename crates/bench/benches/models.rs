//! Criterion benchmarks of the pluggable topology-model layer: one
//! full dynamic run per model at matched expected churn volume
//! (`m·ν` edge changes per unit time, the E22 parameterization), so
//! regressions in any model's event scheduling or apply path — or in
//! the trait dispatch the engines now route every model through — show
//! up as per-model wall-clock drift against the committed baseline.
//!
//! Since PR 8 the full-run groups execute under `RngContract::V2` (the
//! superposition scheduler — the default contract for new specs), so
//! the committed BENCH_PR8.json baseline prices the engine as shipped;
//! compare against BENCH_PR7.json for the eager-queue (v1) numbers on
//! identical labels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
// The benched suite IS the E22 suite: importing it keeps the committed
// BENCH_PR3.json baseline tracking exactly the models the experiment
// measures, parameter drift included.
use rumor_analysis::experiments::e22_models::matched_models;
use rumor_core::Mode;
use rumor_core::{run_dynamic_sharded_under, run_dynamic_under, RngContract};
use rumor_graph::dynamic::MutableGraph;
use rumor_graph::{generators, Node};
use rumor_sim::rng::Xoshiro256PlusPlus;

fn bench_models_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_models_gnp_256");
    group.sample_size(20);
    let n = 256;
    let p = 2.0 * (n as f64).ln() / n as f64;
    let g = generators::gnp_connected(n, p, &mut Xoshiro256PlusPlus::seed_from(42), 200);
    for (name, model) in matched_models(&g) {
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, model| {
            b.iter(|| {
                run_dynamic_under(
                    RngContract::V2,
                    &g,
                    0,
                    Mode::PushPull,
                    model,
                    &mut rng,
                    100_000_000,
                )
            })
        });
    }
    group.finish();
}

fn bench_models_sharded(c: &mut Criterion) {
    // The same suite through the sharded engine at K = 4: prices the
    // per-model rate-impact path (incremental for flips/walks/heals,
    // global recompute for snapshots/moves/strikes).
    let mut group = c.benchmark_group("topology_models_sharded_k4_gnp_256");
    group.sample_size(10);
    let n = 256;
    let p = 2.0 * (n as f64).ln() / n as f64;
    let g = generators::gnp_connected(n, p, &mut Xoshiro256PlusPlus::seed_from(42), 200);
    for (name, model) in matched_models(&g) {
        let mut rng = Xoshiro256PlusPlus::seed_from(9);
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, model| {
            b.iter(|| {
                run_dynamic_sharded_under(
                    RngContract::V2,
                    &g,
                    0,
                    Mode::PushPull,
                    model,
                    4,
                    &mut rng,
                    100_000_000,
                )
            })
        });
    }
    group.finish();
}

fn bench_models_sequential_1024(c: &mut Criterion) {
    // The scale row the flat-memory core is for: 4x the nodes, ~5x the
    // edges of the 256 group. Per-trial setup (graph adoption, model
    // buffers) is pooled, so this prices the steady-state hot path.
    let mut group = c.benchmark_group("topology_models_gnp_1024");
    // 40 samples (the 3s shim budget still bounds slow rows): medians
    // on this group feed the BENCH_PR* baselines, and 10 samples let a
    // single scheduler-noise spike drag the median by tens of percent.
    group.sample_size(40);
    let n = 1024;
    let p = 2.0 * (n as f64).ln() / n as f64;
    let g = generators::gnp_connected(n, p, &mut Xoshiro256PlusPlus::seed_from(42), 200);
    for (name, model) in matched_models(&g) {
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, model| {
            b.iter(|| {
                run_dynamic_under(
                    RngContract::V2,
                    &g,
                    0,
                    Mode::PushPull,
                    model,
                    &mut rng,
                    100_000_000,
                )
            })
        });
    }
    group.finish();
}

fn bench_compaction_threshold_sweep(c: &mut Criterion) {
    // Drives the MutableGraph directly (no engine) through a fixed
    // random churn + neighbor-draw mix at different compaction
    // thresholds: 0 compacts after every mutation, `usize::MAX` lets
    // the overlay grow without bound, `auto` is the default 2x-base
    // policy. The sweep prices the policy itself; the engines always
    // run `auto`.
    let mut group = c.benchmark_group("compaction_threshold_gnp_256");
    group.sample_size(20);
    let n = 256usize;
    let p = 2.0 * (n as f64).ln() / n as f64;
    let g = generators::gnp_connected(n, p, &mut Xoshiro256PlusPlus::seed_from(42), 200);
    let edges: Vec<(Node, Node)> = g.edges().collect();
    for (label, threshold) in [
        ("eager-0", Some(0)),
        ("t-64", Some(64)),
        ("t-1024", Some(1024)),
        ("never", Some(usize::MAX)),
        ("auto", None),
    ] {
        let mut rng = Xoshiro256PlusPlus::seed_from(11);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut net = MutableGraph::from_graph(&g);
                if let Some(t) = threshold {
                    net.set_compaction_threshold(t);
                }
                let mut touched = 0u32;
                for _ in 0..20_000 {
                    let (u, v) = edges[rng.range_usize(edges.len())];
                    if net.has_edge(u, v) {
                        net.remove_edge(u, v);
                    } else {
                        net.add_edge(u, v);
                    }
                    let q = rng.range_usize(n) as Node;
                    if net.degree(q) > 0 {
                        touched ^= net.random_neighbor(q, &mut rng);
                    }
                }
                touched
            })
        });
    }
    group.finish();
}

fn bench_hotpath_components(c: &mut Criterion) {
    // Isolates the three cost centers a dynamic-model event pays —
    // graph mutation, neighbor draw, event-queue churn — so a model
    // bench regression can be attributed without profiling.
    let mut group = c.benchmark_group("hotpath_components_gnp_256");
    group.sample_size(20);
    let n = 256usize;
    let p = 2.0 * (n as f64).ln() / n as f64;
    let g = generators::gnp_connected(n, p, &mut Xoshiro256PlusPlus::seed_from(42), 200);
    let edges: Vec<(Node, Node)> = g.edges().collect();
    let mut setup = Xoshiro256PlusPlus::seed_from(13);
    let flip_seq: Vec<(Node, Node)> =
        (0..20_000).map(|_| edges[setup.range_usize(edges.len())]).collect();
    let draw_seq: Vec<Node> = (0..20_000).map(|_| setup.range_usize(n) as Node).collect();

    group.bench_function("flips", |b| {
        b.iter(|| {
            let mut net = MutableGraph::from_graph(&g);
            let mut count = 0usize;
            for &(u, v) in &flip_seq {
                if !net.remove_edge(u, v) {
                    net.add_edge(u, v);
                    count += 1;
                }
            }
            count
        })
    });

    group.bench_function("draws", |b| {
        // Draws on a churned graph: half the flip sequence applied, so
        // a realistic share of nodes reads through the overlay.
        let mut net = MutableGraph::from_graph(&g);
        for &(u, v) in &flip_seq[..10_000] {
            if !net.remove_edge(u, v) {
                net.add_edge(u, v);
            }
        }
        let mut rng = Xoshiro256PlusPlus::seed_from(17);
        b.iter(|| {
            let mut acc = 0 as Node;
            for &v in &draw_seq {
                if net.degree(v) > 0 {
                    acc ^= net.random_neighbor(v, &mut rng);
                }
            }
            acc
        })
    });

    group.bench_function("queue", |b| {
        // The engine-side cost per topology event: one heap pop + one
        // exp draw + one push, at the markov model's pending-event count.
        use rumor_sim::events::EventQueue;
        let mut rng = Xoshiro256PlusPlus::seed_from(19);
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..edges.len() as u32 {
                q.push(rng.exp(1.0), i);
            }
            let mut acc = 0u32;
            for _ in 0..20_000 {
                let (t, i) = q.pop().expect("queue stays full");
                acc ^= i;
                q.push(t + rng.exp(1.0), i);
            }
            acc
        })
    });

    group.bench_function("superposition", |b| {
        // The v2 counterpart of the `queue` row: one Exp(total) draw +
        // one thinning draw + a markov-shaped two-channel reweight per
        // event, with no per-edge pending state at all. The gap between
        // this row and `queue` is the per-event scheduling win the
        // full-run groups realize under `RngContract::V2`.
        use rumor_sim::events::{Fired, Superposition};
        let mut rng = Xoshiro256PlusPlus::seed_from(19);
        let m = edges.len() as f64;
        b.iter(|| {
            let mut sup: Superposition<u32> = Superposition::new(2);
            let (mut off_pop, mut on_pop) = (m, 0.0);
            sup.set_weight(0.0, 0, off_pop);
            sup.set_weight(0.0, 1, on_pop);
            let mut acc = 0usize;
            for _ in 0..20_000 {
                let (t, fired) = sup.pop(&mut rng).expect("populations stay live");
                let ch = match fired {
                    Fired::Channel(ch) => ch,
                    Fired::Event(_) => unreachable!("no queued events"),
                };
                // One edge migrates between the off/on populations,
                // moving both channel weights — the markov fire shape.
                if ch == 0 {
                    off_pop -= 1.0;
                    on_pop += 1.0;
                } else {
                    off_pop += 1.0;
                    on_pop -= 1.0;
                }
                sup.set_weight(t, 0, off_pop);
                sup.set_weight(t, 1, on_pop);
                acc ^= ch;
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_models_sequential,
    bench_models_sharded,
    bench_models_sequential_1024,
    bench_compaction_threshold_sweep,
    bench_hotpath_components
);
criterion_main!(benches);
