//! Criterion benchmarks of the pluggable topology-model layer: one
//! full dynamic run per model at matched expected churn volume
//! (`m·ν` edge changes per unit time, the E22 parameterization), so
//! regressions in any model's event scheduling or apply path — or in
//! the trait dispatch the engines now route every model through — show
//! up as per-model wall-clock drift against BENCH_PR3.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
// The benched suite IS the E22 suite: importing it keeps the committed
// BENCH_PR3.json baseline tracking exactly the models the experiment
// measures, parameter drift included.
use rumor_analysis::experiments::e22_models::matched_models;
use rumor_core::Mode;
use rumor_core::{run_dynamic, run_dynamic_sharded};
use rumor_graph::generators;
use rumor_sim::rng::Xoshiro256PlusPlus;

fn bench_models_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_models_gnp_256");
    group.sample_size(20);
    let n = 256;
    let p = 2.0 * (n as f64).ln() / n as f64;
    let g = generators::gnp_connected(n, p, &mut Xoshiro256PlusPlus::seed_from(42), 200);
    for (name, model) in matched_models(&g) {
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, model| {
            b.iter(|| run_dynamic(&g, 0, Mode::PushPull, model, &mut rng, 100_000_000))
        });
    }
    group.finish();
}

fn bench_models_sharded(c: &mut Criterion) {
    // The same suite through the sharded engine at K = 4: prices the
    // per-model rate-impact path (incremental for flips/walks/heals,
    // global recompute for snapshots/moves/strikes).
    let mut group = c.benchmark_group("topology_models_sharded_k4_gnp_256");
    group.sample_size(10);
    let n = 256;
    let p = 2.0 * (n as f64).ln() / n as f64;
    let g = generators::gnp_connected(n, p, &mut Xoshiro256PlusPlus::seed_from(42), 200);
    for (name, model) in matched_models(&g) {
        let mut rng = Xoshiro256PlusPlus::seed_from(9);
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, model| {
            b.iter(|| run_dynamic_sharded(&g, 0, Mode::PushPull, model, 4, &mut rng, 100_000_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models_sequential, bench_models_sharded);
criterion_main!(benches);
