//! Criterion benchmarks of the engine layer added with the sharded
//! PDES refactor: coordinator overhead at K = 1, within-trial scaling
//! across shard counts on a low-cut topology, and the lazy per-edge
//! clock engine against the eager pending-flip queue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rumor_core::dynamic::{run_dynamic, DynamicModel, EdgeMarkov};
use rumor_core::engine::{run_dynamic_sharded, run_edge_markov_lazy};
use rumor_core::Mode;
use rumor_graph::generators;
use rumor_sim::rng::Xoshiro256PlusPlus;

fn bench_k1_overhead(c: &mut Criterion) {
    // The K = 1 sharded run replays the sequential engine seed-for-seed;
    // this group prices the window machinery it pays for that.
    let mut group = c.benchmark_group("sharded_k1_overhead_gnp_256");
    group.sample_size(30);
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(42);
    let n = 256;
    let p = 2.0 * (n as f64).ln() / n as f64;
    let g = generators::gnp_connected(n, p, &mut graph_rng, 200);
    let model = DynamicModel::EdgeMarkov(EdgeMarkov::symmetric(1.0));
    {
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        group.bench_function("sequential", |b| {
            b.iter(|| run_dynamic(&g, 0, Mode::PushPull, &model, &mut rng, 100_000_000))
        });
    }
    {
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        group.bench_function("sharded-k1", |b| {
            b.iter(|| run_dynamic_sharded(&g, 0, Mode::PushPull, &model, 1, &mut rng, 100_000_000))
        });
    }
    group.finish();
}

fn bench_shard_scaling(c: &mut Criterion) {
    // Low-cut topology (necklace of cliques, shards aligned with the
    // cliques): the regime where windows amortize enough local events
    // for worker threads to pay off on multi-core hardware.
    let mut group = c.benchmark_group("sharded_scaling_necklace_4096");
    group.sample_size(10);
    let g = generators::necklace_of_cliques(8, 512);
    for shards in [1usize, 2, 4, 8] {
        let mut rng = Xoshiro256PlusPlus::seed_from(9);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k={shards}")),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    run_dynamic_sharded(
                        &g,
                        0,
                        Mode::PushPull,
                        &DynamicModel::Static,
                        shards,
                        &mut rng,
                        1_000_000_000,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_lazy_vs_eager(c: &mut Criterion) {
    // The lazy engine pays per touched edge; the eager engine pays per
    // flip, everywhere, all the time.
    let mut group = c.benchmark_group("lazy_vs_eager_edge_markov_rr6");
    group.sample_size(15);
    let model = EdgeMarkov::symmetric(0.5);
    for n in [1024usize, 4096] {
        let mut graph_rng = Xoshiro256PlusPlus::seed_from(11);
        let g = generators::random_regular_connected(n, 6, &mut graph_rng, 500);
        {
            let mut rng = Xoshiro256PlusPlus::seed_from(13);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("eager-n={n}")),
                &g,
                |b, g| {
                    b.iter(|| {
                        run_dynamic(
                            g,
                            0,
                            Mode::PushPull,
                            &DynamicModel::EdgeMarkov(model),
                            &mut rng,
                            100_000_000,
                        )
                    })
                },
            );
        }
        {
            let mut rng = Xoshiro256PlusPlus::seed_from(13);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("lazy-n={n}")),
                &g,
                |b, g| {
                    b.iter(|| {
                        run_edge_markov_lazy(g, 0, Mode::PushPull, model, &mut rng, 100_000_000)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_k1_overhead, bench_shard_scaling, bench_lazy_vs_eager);
criterion_main!(benches);
