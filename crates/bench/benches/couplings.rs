//! Criterion benchmarks of the coupling machinery (the paper's proof
//! constructions, §§3–5).

use criterion::{criterion_group, criterion_main, Criterion};
use rumor_core::coupling::blocks::run_block_coupling;
use rumor_core::coupling::pull::run_pull_coupling;
use rumor_core::coupling::push::run_push_coupling;
use rumor_graph::generators;

fn bench_couplings(c: &mut Criterion) {
    let mut group = c.benchmark_group("couplings_hypercube_64");
    group.sample_size(30);
    let g = generators::hypercube(6);
    let mut seed = 0u64;
    group.bench_function("push_coupling", |b| {
        b.iter(|| {
            seed += 1;
            run_push_coupling(&g, 0, seed, 1_000_000)
        })
    });
    group.bench_function("pull_coupling", |b| {
        b.iter(|| {
            seed += 1;
            run_pull_coupling(&g, 0, seed, 1_000_000)
        })
    });
    group.bench_function("block_coupling", |b| {
        b.iter(|| {
            seed += 1;
            run_block_coupling(&g, 0, seed, 100_000_000)
        })
    });
    group.finish();
}

fn bench_block_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_coupling_scaling");
    group.sample_size(15);
    for n in [64usize, 256] {
        let g = generators::cycle(n);
        let mut seed = 0u64;
        group.bench_function(format!("cycle-{n}"), |b| {
            b.iter(|| {
                seed += 1;
                run_block_coupling(&g, 0, seed, 500_000_000)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_couplings, bench_block_scaling);
criterion_main!(benches);
