//! Criterion benchmarks of the graph generators at n ≈ 1024.

use criterion::{criterion_group, criterion_main, Criterion};
use rumor_graph::generators;
use rumor_sim::rng::Xoshiro256PlusPlus;

fn bench_deterministic(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators_deterministic_1024");
    group.bench_function("star", |b| b.iter(|| generators::star(1024)));
    group.bench_function("cycle", |b| b.iter(|| generators::cycle(1024)));
    group.bench_function("hypercube-10", |b| b.iter(|| generators::hypercube(10)));
    group.bench_function("torus-32x32", |b| b.iter(|| generators::torus(32, 32)));
    group.bench_function("complete-1024", |b| b.iter(|| generators::complete(1024)));
    group.bench_function("diamonds-10x102", |b| b.iter(|| generators::string_of_diamonds(10, 102)));
    group.finish();
}

fn bench_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators_random_1024");
    group.sample_size(20);
    group.bench_function("gnp-0.01", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from(1);
        b.iter(|| generators::gnp(1024, 0.01, &mut rng))
    });
    group.bench_function("random-regular-6", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from(2);
        b.iter(|| generators::random_regular(1024, 6, &mut rng, 1000))
    });
    group.bench_function("chung-lu-2.5", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from(3);
        b.iter(|| generators::chung_lu(1024, 2.5, 8.0, &mut rng))
    });
    group.bench_function("pref-attach-2", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from(4);
        b.iter(|| generators::preferential_attachment(1024, 2, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_deterministic, bench_random);
criterion_main!(benches);
