//! Criterion micro-benchmarks of the protocol engines: one synchronous
//! run and one asynchronous run per view, across representative graphs.
//! These measure simulator throughput (runs/second), complementing the
//! experiment binaries that measure protocol behaviour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rumor_core::{run_async, run_sync, AsyncView, Mode};
use rumor_graph::{generators, Graph};
use rumor_sim::rng::Xoshiro256PlusPlus;

fn bench_graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = Xoshiro256PlusPlus::seed_from(42);
    vec![
        ("hypercube-256", generators::hypercube(8)),
        ("gnp-256", generators::gnp_connected(256, 0.05, &mut rng, 200)),
        ("star-256", generators::star(256)),
        ("cycle-256", generators::cycle(256)),
    ]
}

fn bench_sync_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_pushpull");
    for (name, g) in bench_graphs() {
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| run_sync(g, 0, Mode::PushPull, &mut rng, 1_000_000))
        });
    }
    group.finish();
}

fn bench_sync_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_modes_hypercube_256");
    let g = generators::hypercube(8);
    for mode in Mode::ALL {
        let mut rng = Xoshiro256PlusPlus::seed_from(8);
        group.bench_with_input(BenchmarkId::from_parameter(mode.to_string()), &mode, |b, &mode| {
            b.iter(|| run_sync(&g, 0, mode, &mut rng, 1_000_000))
        });
    }
    group.finish();
}

fn bench_async_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_views_hypercube_256");
    let g = generators::hypercube(8);
    for view in AsyncView::ALL {
        let mut rng = Xoshiro256PlusPlus::seed_from(9);
        group.bench_with_input(BenchmarkId::from_parameter(view.to_string()), &view, |b, &view| {
            b.iter(|| run_async(&g, 0, Mode::PushPull, view, &mut rng, 100_000_000))
        });
    }
    group.finish();
}

fn bench_async_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_global_clock_scaling");
    group.sample_size(20);
    for dim in [6u32, 8, 10] {
        let g = generators::hypercube(dim);
        let mut rng = Xoshiro256PlusPlus::seed_from(10);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={}", g.node_count())),
            &g,
            |b, g| {
                b.iter(|| {
                    run_async(g, 0, Mode::PushPull, AsyncView::GlobalClock, &mut rng, 100_000_000)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sync_engine,
    bench_sync_modes,
    bench_async_views,
    bench_async_scaling
);
criterion_main!(benches);
