//! Criterion benchmarks of the observability layer.
//!
//! The probe hooks are statically dispatched and default-empty, so the
//! `NoProbe` path must compile down to the unprobed engines — the
//! `*_noprobe` benchmarks pin that the disabled overhead stays under a
//! few percent. The probed variants price the cheapest real consumers:
//! the counting probe (a handful of integer adds per event) and full
//! spreading-curve capture through the spec layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rumor_core::dynamic::{DynamicModel, EdgeMarkov};
use rumor_core::spec::{Engine, GraphSpec, Protocol, SimSpec, Topology};
use rumor_core::{
    run_async, run_async_probed, run_dynamic, run_dynamic_probed, AsyncView, CountingProbe,
    LogHistogram, MetricsLevel, Mode, NoProbe,
};
use rumor_graph::generators;
use rumor_sim::rng::Xoshiro256PlusPlus;

/// Unprobed baseline vs the generic entry point with `NoProbe`: the two
/// must be indistinguishable (the acceptance gate is <5% overhead).
fn bench_noprobe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_noprobe_overhead");
    group.sample_size(40);
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(42);
    let g = generators::gnp_connected(256, 0.05, &mut graph_rng, 200);
    let model = DynamicModel::EdgeMarkov(EdgeMarkov::symmetric(1.0));

    // Every iteration re-seeds, so unprobed and NoProbe simulate the
    // IDENTICAL trial — the comparison is work-for-work, not
    // trial-population-for-trial-population.
    group.bench_function("dynamic_unprobed", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256PlusPlus::seed_from(7);
            run_dynamic(&g, 0, Mode::PushPull, &model, &mut rng, 100_000_000)
        })
    });
    group.bench_function("dynamic_noprobe", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256PlusPlus::seed_from(7);
            run_dynamic_probed(&g, 0, Mode::PushPull, &model, &mut rng, 100_000_000, &mut NoProbe)
        })
    });

    group.bench_function("async_unprobed", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256PlusPlus::seed_from(9);
            run_async(&g, 0, Mode::PushPull, AsyncView::GlobalClock, &mut rng, 100_000_000)
        })
    });
    group.bench_function("async_noprobe", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256PlusPlus::seed_from(9);
            run_async_probed(
                &g,
                0,
                Mode::PushPull,
                AsyncView::GlobalClock,
                &mut rng,
                100_000_000,
                &mut NoProbe,
            )
        })
    });
    group.finish();
}

/// The cheapest live probe: per-event integer counters.
fn bench_counting_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_counting_probe");
    group.sample_size(40);
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(42);
    let g = generators::gnp_connected(256, 0.05, &mut graph_rng, 200);
    let model = DynamicModel::EdgeMarkov(EdgeMarkov::symmetric(1.0));
    group.bench_function("dynamic_counting", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256PlusPlus::seed_from(7);
            let mut probe = CountingProbe::default();
            run_dynamic_probed(&g, 0, Mode::PushPull, &model, &mut rng, 100_000_000, &mut probe)
        })
    });
    group.finish();
}

/// End-to-end cost of metrics assembly in the spec layer: curves,
/// histograms, and the artifact render, against the metrics-off run.
fn bench_spec_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_spec_metrics");
    group.sample_size(15);
    let spec = |level: MetricsLevel| {
        SimSpec::new(GraphSpec::Gnp { n: 128, p: 0.08, seed: 11, attempts: 200 })
            .protocol(Protocol::push_pull_async())
            .topology(Topology::Model(DynamicModel::EdgeMarkov(EdgeMarkov::symmetric(1.0))))
            .engine(Engine::Sequential)
            .trials(16)
            .seed(5)
            .metrics(level)
    };
    for level in [MetricsLevel::Off, MetricsLevel::Json] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("metrics={level}")),
            &spec(level),
            |b, spec| b.iter(|| spec.clone().build().unwrap().run()),
        );
    }
    group.finish();
}

/// Raw histogram throughput: record and merge.
fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_histogram");
    group.sample_size(60);
    let mut rng = Xoshiro256PlusPlus::seed_from(3);
    let values: Vec<f64> = (0..4096).map(|_| rng.f64_unit() * 1e6).collect();
    group.bench_function("record_4096", |b| {
        b.iter(|| {
            let mut h = LogHistogram::new();
            for &v in &values {
                h.record(v);
            }
            h
        })
    });
    let mut a = LogHistogram::new();
    let mut bh = LogHistogram::new();
    for (i, &v) in values.iter().enumerate() {
        if i % 2 == 0 {
            a.record(v);
        } else {
            bh.record(v);
        }
    }
    group.bench_function("merge", |b| {
        b.iter(|| {
            let mut m = a.clone();
            m.merge(&bh);
            m
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_noprobe_overhead,
    bench_counting_probe,
    bench_spec_metrics,
    bench_histogram
);
criterion_main!(benches);
