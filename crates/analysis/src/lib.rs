//! Experiment harness reproducing every quantitative claim of
//! *“How Asynchrony Affects Rumor Spreading Time”* (PODC 2016).
//!
//! The paper is pure theory — its “evaluation” is a set of theorems,
//! worked examples, and proof constructions. Each experiment here
//! regenerates one of those claims as a table or series whose *shape*
//! (who wins, by what factor, how the gap scales) can be compared with
//! the theory. See `EXPERIMENTS.md` at the workspace root for the
//! claim-by-claim record.
//!
//! | Experiment | Paper claim |
//! |---|---|
//! | [`experiments::e1_upper`] | Theorem 1: `T₁/ₙ(pp-a) = O(T₁/ₙ(pp) + log n)` |
//! | [`experiments::e2_lower`] | Theorem 2: `E[T(pp-a)] = Ω(E[T(pp)]/√n)` |
//! | [`experiments::e3_star`] | Star: sync ≤ 2 rounds, async `Θ(log n)` |
//! | [`experiments::e4_regular`] | Corollary 3: sync push `Θ(=)` sync push–pull on regular graphs |
//! | [`experiments::e5_push_double`] | Async push ∼ 2 × async push–pull on regular graphs |
//! | [`experiments::e6_diamonds`] | Acan et al. separation: sync `Θ(n^{1/3})` vs async polylog |
//! | [`experiments::e7_classical`] | Classical graphs: both models within constant factors |
//! | [`experiments::e8_social`] | Social topologies: async informs most nodes faster |
//! | [`experiments::e9_views`] | §2: the three async formulations are one process |
//! | [`experiments::e10_aux`] | Lemma 6 sandwich: `ppx ≼ pp`, plus ppy placement |
//! | [`experiments::e11_coupling`] | Lemmas 9/10: coupled excesses are `O(log n)` |
//! | [`experiments::e12_blocks`] | Lemmas 13/14: subset invariant, block accounting |
//! | [`experiments::e13_steps`] | Footnote 3: `E[steps]/n = E[T]` |
//! | [`experiments::e14_fpp`] | Richardson/FPP correspondence on regular graphs |
//! | [`experiments::e15_capacity`] | Ablation: the `√n` block size of §5 |
//! | [`experiments::e16_quasirandom`] | Extension: quasirandom protocol (paper ref. \[11\]) |
//! | [`experiments::e17_sources`] | Extension: source placement sensitivity |
//! | [`experiments::e18_loss`] | Extension: graceful degradation under loss |
//! | [`experiments::e19_dynamic_churn`] | Dynamic networks: `E[T]` vs edge-Markov churn, static baseline at ν = 0 |
//! | [`experiments::e20_rewire_gap`] | Dynamic networks: sync-vs-async gap under periodic rewiring |
//! | [`experiments::e21_engines`] | Engine layer: sharded PDES exactness/speedup, lazy-clock bookkeeping |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curves;
pub mod experiments;
pub mod fleet;
pub mod paired;
pub mod report;
pub mod table;

pub use curves::sync_async_fraction_table;
pub use experiments::common::ExperimentConfig;
pub use fleet::fleet_summary_table;
pub use paired::PairedSamples;
pub use table::Table;
