//! Experiment registry and the run-everything entry point.

use crate::experiments::*;
use crate::table::Table;
use crate::ExperimentConfig;

/// A named experiment: identifier, one-line description, and runner.
pub struct Experiment {
    /// Stable identifier (`e1` … `e18`), used by the CLI binaries.
    pub id: &'static str,
    /// One-line description of the reproduced claim.
    pub claim: &'static str,
    /// The runner.
    pub run: fn(&ExperimentConfig) -> Table,
}

/// All experiments in presentation order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            claim: "Theorem 1: T_hp(pp-a) = O(T_hp(pp) + log n)",
            run: e1_upper::run,
        },
        Experiment {
            id: "e2",
            claim: "Theorem 2: E[T(pp)] = O(sqrt(n) E[T(pp-a)] + sqrt(n))",
            run: e2_lower::run,
        },
        Experiment {
            id: "e3",
            claim: "star: sync <= 2 rounds, async Theta(log n)",
            run: e3_star::run,
        },
        Experiment {
            id: "e4",
            claim: "Corollary 3: sync push = Theta(sync push-pull) on regular graphs",
            run: e4_regular::run,
        },
        Experiment {
            id: "e5",
            claim: "regular graphs: async push ~ 2 x async push-pull in distribution",
            run: e5_push_double::run,
        },
        Experiment {
            id: "e6",
            claim: "diamonds: sync Theta(n^{1/3}) vs async polylog (Acan et al.)",
            run: e6_diamonds::run,
        },
        Experiment {
            id: "e7",
            claim: "classical graphs: sync and async within constant factors",
            run: e7_classical::run,
        },
        Experiment {
            id: "e8",
            claim: "social networks: async informs the bulk faster",
            run: e8_social::run,
        },
        Experiment {
            id: "e9",
            claim: "three async formulations are one process",
            run: e9_views::run,
        },
        Experiment {
            id: "e10",
            claim: "Lemma 6: T(ppx) dominated by T(pp); ppy placed above",
            run: e10_aux::run,
        },
        Experiment {
            id: "e11",
            claim: "Lemmas 9/10: coupled excesses are O(log n)",
            run: e11_coupling::run,
        },
        Experiment {
            id: "e12",
            claim: "Lemmas 13/14: block subset invariant and accounting",
            run: e12_blocks::run,
        },
        Experiment { id: "e13", claim: "footnote 3: E[steps]/n = E[T]", run: e13_steps::run },
        Experiment {
            id: "e14",
            claim: "hypercube pp-a = Richardson first-passage percolation",
            run: e14_fpp::run,
        },
        Experiment {
            id: "e15",
            claim: "ablation: sqrt(n) block capacity minimizes coupled rounds",
            run: e15_capacity::run,
        },
        Experiment {
            id: "e16",
            claim: "extension: quasirandom push-pull matches fully random",
            run: e16_quasirandom::run,
        },
        Experiment {
            id: "e17",
            claim: "extension: source placement sensitivity",
            run: e17_sources::run,
        },
        Experiment {
            id: "e18",
            claim: "extension: graceful degradation under message loss",
            run: e18_loss::run,
        },
        Experiment {
            id: "e19",
            claim: "dynamic networks: E[T] grows with churn; nu = 0 is the static baseline",
            run: e19_dynamic_churn::run,
        },
        Experiment {
            id: "e20",
            claim: "dynamic networks: sync-vs-async gap stays Theta(1) under rewiring",
            run: e20_rewire_gap::run,
        },
        Experiment {
            id: "e21",
            claim: "engines: sharded PDES replays K=1 seed-for-seed; lazy clocks are O(touched)",
            run: e21_engines::run,
        },
        Experiment {
            id: "e22",
            claim: "topology models: at matched churn volume the frontier adversary hurts most",
            run: e22_models::run,
        },
        Experiment {
            id: "e23",
            claim: "coupled traces: paired sync-vs-async CIs beat E20's independent-run CIs",
            run: e23_coupled_gap::run,
        },
    ]
}

/// Looks up an experiment by its id.
pub fn find_experiment(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id == id)
}

/// Runs every experiment, returning `(id, table)` pairs.
pub fn run_all(cfg: &ExperimentConfig) -> Vec<(&'static str, Table)> {
    all_experiments().into_iter().map(|e| (e.id, (e.run)(cfg))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let all = all_experiments();
        assert_eq!(all.len(), 23);
        let mut ids: Vec<&str> = all.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 23, "duplicate experiment ids");
    }

    #[test]
    fn find_experiment_works() {
        assert!(find_experiment("e1").is_some());
        assert!(find_experiment("e18").is_some());
        assert!(find_experiment("e23").is_some());
        assert!(find_experiment("e99").is_none());
    }
}
