//! Paired (coupled-run) statistics: sync/async comparisons where both
//! samples of a trial share a topology trace and a protocol seed.
//!
//! E20 compared synchronous and asynchronous spreading on dynamic
//! topologies with **independent** trials, so its ratio estimate
//! carries the full variance of both columns. A coupled trial (a
//! `rumor_core::spec::SimSpec` with `.coupled(true)`) drives both runs
//! over the *same* recorded [`TopologyTrace`] with common random
//! numbers; the shared topology realization induces positive
//! correlation between the columns, and [`PairedSamples`] exploits it:
//! the delta-method confidence interval for the ratio of means keeps
//! the covariance term the independent-runs interval must drop, so the
//! paired interval is strictly narrower whenever the coupling bites
//! (`Cov > 0`). The shrink factor `unpaired CI / paired CI` is E23's
//! direct measurement of how much the coupling buys.
//!
//! Censoring: a trial where **either** run exhausted its budget is
//! excluded from the pairing entirely (its time is a lower bound, not a
//! sample) and carried in [`PairedSamples::censored`] — the same
//! never-average contract as
//! [`CensoredSamples`](crate::experiments::common::CensoredSamples).
//!
//! [`TopologyTrace`]: rumor_core::TopologyTrace

use rumor_core::spec::CoupledOutcome;
use rumor_sim::stats::OnlineStats;

/// Paired `(sync, async)` spreading-time samples from coupled trials.
#[derive(Debug, Clone, PartialEq)]
pub struct PairedSamples {
    /// `(sync_rounds, async_time)` for trials where **both** runs
    /// completed.
    pub pairs: Vec<(f64, f64)>,
    /// Trials dropped because at least one side was budget-censored.
    pub censored: usize,
}

impl PairedSamples {
    /// Splits coupled outcomes into completed pairs and a censored
    /// count. A trial enters the pairing only if both its runs
    /// completed; anything else is censored (never averaged).
    pub fn from_coupled(outcomes: &[CoupledOutcome]) -> Self {
        let pairs: Vec<(f64, f64)> = outcomes
            .iter()
            .filter(|o| o.sync_completed && o.async_completed)
            .map(|o| (o.sync_rounds, o.async_time))
            .collect();
        let censored = outcomes.len() - pairs.len();
        Self { pairs, censored }
    }

    /// Builds directly from pairs (test fixtures, external data).
    pub fn from_pairs(pairs: Vec<(f64, f64)>, censored: usize) -> Self {
        Self { pairs, censored }
    }

    /// Total trials observed (paired + censored).
    pub fn trials(&self) -> usize {
        self.pairs.len() + self.censored
    }

    /// Mean synchronous rounds over the paired trials.
    pub fn mean_sync(&self) -> Option<f64> {
        self.column_stats().map(|(s, _)| s.mean())
    }

    /// Mean asynchronous time over the paired trials.
    pub fn mean_async(&self) -> Option<f64> {
        self.column_stats().map(|(_, a)| a.mean())
    }

    /// The headline estimate: `mean(async) / mean(sync)`.
    pub fn ratio_of_means(&self) -> Option<f64> {
        self.column_stats().map(|(s, a)| a.mean() / s.mean())
    }

    /// Per-trial `async / sync` ratios — the per-trace gap samples.
    pub fn ratios(&self) -> Vec<f64> {
        self.pairs.iter().map(|&(s, a)| a / s).collect()
    }

    /// Pearson correlation between the two columns across paired
    /// trials; `None` with fewer than two pairs or a degenerate column.
    /// Positive correlation is what the shared trace buys.
    pub fn correlation(&self) -> Option<f64> {
        let (s, a) = self.column_stats()?;
        if self.pairs.len() < 2 {
            return None;
        }
        let denom = s.stddev() * a.stddev();
        if denom == 0.0 {
            return None;
        }
        Some(self.covariance(&s, &a) / denom)
    }

    /// Half-width of the 95 % delta-method confidence interval for
    /// [`ratio_of_means`](Self::ratio_of_means) **using the pairing**:
    /// the covariance between the columns is kept, so shared-trace
    /// variance cancels.
    pub fn paired_ci_half_width(&self) -> Option<f64> {
        self.ratio_ci(true)
    }

    /// Half-width of the 95 % delta-method confidence interval for the
    /// same ratio computed **as if the columns were independent** (the
    /// covariance term dropped) — exactly the interval E20's
    /// independent-runs design is limited to, at the same trial count.
    pub fn unpaired_ci_half_width(&self) -> Option<f64> {
        self.ratio_ci(false)
    }

    /// The variance-reduction factor `unpaired CI / paired CI`
    /// (`> 1` = the coupling helped).
    pub fn ci_shrink_factor(&self) -> Option<f64> {
        let paired = self.paired_ci_half_width()?;
        let unpaired = self.unpaired_ci_half_width()?;
        if paired == 0.0 {
            return None;
        }
        Some(unpaired / paired)
    }

    fn column_stats(&self) -> Option<(OnlineStats, OnlineStats)> {
        if self.pairs.is_empty() {
            return None;
        }
        let sync: OnlineStats = self.pairs.iter().map(|&(s, _)| s).collect();
        let asy: OnlineStats = self.pairs.iter().map(|&(_, a)| a).collect();
        if sync.mean() == 0.0 {
            return None;
        }
        Some((sync, asy))
    }

    /// Unbiased sample covariance between the columns.
    fn covariance(&self, s: &OnlineStats, a: &OnlineStats) -> f64 {
        let n = self.pairs.len();
        if n < 2 {
            return 0.0;
        }
        let (ms, ma) = (s.mean(), a.mean());
        self.pairs.iter().map(|&(x, y)| (x - ms) * (y - ma)).sum::<f64>() / (n - 1) as f64
    }

    /// Delta-method CI for `R = Ā/S̄`:
    /// `Var(R) ≈ (Var(Ā) + R²·Var(S̄) − 2R·Cov(Ā, S̄)) / (n·S̄²)`,
    /// with the covariance kept (`paired`) or dropped (independent).
    fn ratio_ci(&self, paired: bool) -> Option<f64> {
        let (s, a) = self.column_stats()?;
        let n = self.pairs.len();
        if n < 2 {
            return None;
        }
        let r = a.mean() / s.mean();
        let cov = if paired { self.covariance(&s, &a) } else { 0.0 };
        let var = (a.variance() + r * r * s.variance() - 2.0 * r * cov)
            / (n as f64 * s.mean() * s.mean());
        Some(1.96 * var.max(0.0).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::dynamic::EdgeMarkov;
    use rumor_core::spec::{Protocol, SimSpec, Topology};
    use rumor_core::DynamicModel;
    use rumor_graph::generators;

    fn outcome(sync: f64, asy: f64, sc: bool, ac: bool) -> CoupledOutcome {
        CoupledOutcome {
            sync_rounds: sync,
            sync_completed: sc,
            async_time: asy,
            async_completed: ac,
            trace_steps: 1,
        }
    }

    /// The satellite regression: censored trials leave the pairing
    /// entirely instead of being averaged (either side censoring drops
    /// the pair), alongside the PR 3 `CensoredSamples` contract.
    #[test]
    fn censored_trials_are_excluded_from_pairing_not_averaged() {
        let outcomes = vec![
            outcome(2.0, 4.0, true, true),
            outcome(100.0, 1.0, false, true), // sync censored
            outcome(1.0, 100.0, true, false), // async censored
            outcome(4.0, 4.0, true, true),
        ];
        let p = PairedSamples::from_coupled(&outcomes);
        assert_eq!(p.censored, 2);
        assert_eq!(p.pairs, vec![(2.0, 4.0), (4.0, 4.0)]);
        assert_eq!(p.trials(), 4);
        // Means come from completed pairs only: the censored 100s never
        // contaminate either column.
        assert_eq!(p.mean_sync(), Some(3.0));
        assert_eq!(p.mean_async(), Some(4.0));
        assert_eq!(p.ratios(), vec![2.0, 1.0]);

        // All-censored: no estimate exists.
        let all = PairedSamples::from_coupled(&[outcome(1.0, 1.0, false, false)]);
        assert_eq!(all.censored, 1);
        assert_eq!(all.ratio_of_means(), None);
        assert_eq!(all.paired_ci_half_width(), None);
    }

    /// Perfectly correlated synthetic columns: the paired CI collapses
    /// while the independent-runs CI stays wide.
    #[test]
    fn perfect_correlation_collapses_the_paired_ci() {
        let pairs: Vec<(f64, f64)> = (1..=40).map(|i| (i as f64, 2.0 * i as f64)).collect();
        let p = PairedSamples::from_pairs(pairs, 0);
        assert!((p.correlation().unwrap() - 1.0).abs() < 1e-12);
        assert!((p.ratio_of_means().unwrap() - 2.0).abs() < 1e-12);
        let paired = p.paired_ci_half_width().unwrap();
        let unpaired = p.unpaired_ci_half_width().unwrap();
        assert!(paired < 1e-9, "ratio is deterministic: {paired}");
        assert!(unpaired > 0.1, "independent analysis keeps the variance: {unpaired}");
    }

    /// The satellite fixture: sync and async runs sharing a real trace
    /// (slow edge-Markov churn on a path, where which frontier edges
    /// are down — and for how long — gates both protocols alike) are
    /// positively correlated, and the paired CI is strictly narrower
    /// than the unpaired CI on the same data.
    #[test]
    fn shared_trace_makes_the_paired_ci_strictly_narrower() {
        let g = generators::path(32);
        let model = DynamicModel::EdgeMarkov(EdgeMarkov::symmetric(0.1));
        let report = SimSpec::on_graph(&g)
            .protocol(Protocol::push_pull_async())
            .topology(Topology::Model(model))
            .coupled(true)
            .trials(60)
            .seed(0xC0FFEE)
            .horizon(600.0)
            .max_steps(100_000_000)
            .max_rounds(100_000)
            .build()
            .expect("valid coupled spec")
            .run();
        let p = PairedSamples::from_coupled(report.coupled_outcomes().unwrap());
        assert!(p.pairs.len() >= 50, "fixture should mostly complete");
        let corr = p.correlation().unwrap();
        assert!(corr > 0.2, "shared trace should correlate the columns: r = {corr}");
        let paired = p.paired_ci_half_width().unwrap();
        let unpaired = p.unpaired_ci_half_width().unwrap();
        assert!(
            paired < unpaired,
            "paired CI ({paired}) must be strictly narrower than unpaired ({unpaired})"
        );
        assert!(p.ci_shrink_factor().unwrap() > 1.0);
    }

    #[test]
    fn degenerate_inputs_yield_no_estimates() {
        let empty = PairedSamples::from_pairs(Vec::new(), 3);
        assert_eq!(empty.ratio_of_means(), None);
        assert_eq!(empty.correlation(), None);
        assert_eq!(empty.ci_shrink_factor(), None);
        let single = PairedSamples::from_pairs(vec![(1.0, 2.0)], 0);
        assert_eq!(single.ratio_of_means(), Some(2.0));
        assert_eq!(single.paired_ci_half_width(), None, "one pair has no variance estimate");
        let constant = PairedSamples::from_pairs(vec![(2.0, 3.0); 5], 0);
        assert_eq!(constant.correlation(), None, "zero-variance columns have no correlation");
        assert_eq!(constant.paired_ci_half_width(), Some(0.0));
    }
}
