//! Summary tables for merged `FleetReport` artifacts.
//!
//! The fleet artifact is a JSON document (schema `rumor-fleet v1`);
//! this module renders the per-grid-point aggregation the `rumor
//! sweep` and `rumor stats` commands print. Aggregation happens here,
//! on the artifact, not in the dispatcher — the artifact stays raw
//! per-trial data, and any summary can be recomputed from it later.

use rumor_core::obs::json::Json;

use crate::table::Table;

/// Builds the per-child summary table of a fleet document: one row per
/// grid point with its trial count, censored count, and mean outcome
/// (paired sync/async means for coupled children).
///
/// # Errors
///
/// A message naming the malformed field.
pub fn fleet_summary_table(doc: &Json) -> Result<Table, String> {
    let children =
        doc.get("children").and_then(Json::as_arr).ok_or("fleet document has no children")?;
    let mut t = Table::new("fleet summary", &["point", "unit", "trials", "censored", "mean"]);
    for child in children {
        let point = child.get("point").and_then(Json::as_str).ok_or("child has no point")?;
        let report = child.get("report").ok_or("child has no report")?;
        let unit = report.get("unit").and_then(Json::as_str).ok_or("report has no unit")?;
        let (trials, censored, mean) = child_row(report)?;
        t.add_row(vec![
            point.to_owned(),
            unit.to_owned(),
            trials.to_string(),
            censored.to_string(),
            mean,
        ]);
    }
    if let Some(summary) = doc.get("summary") {
        let num = |k: &str| summary.get(k).and_then(Json::as_num).unwrap_or(f64::NAN);
        t.add_note(&format!(
            "{} children, {} trials total, {} censored",
            num("children"),
            num("trials"),
            num("censored")
        ));
    }
    Ok(t)
}

/// One child's (trials, censored, mean-column text).
fn child_row(report: &Json) -> Result<(usize, usize, String), String> {
    if let Some(coupled) = report.get("coupled").and_then(Json::as_arr) {
        let censored = coupled
            .iter()
            .filter(|o| !(bool_field(o, "sync_completed") && bool_field(o, "async_completed")))
            .count();
        let sync = mean(coupled, "sync_rounds")?;
        let async_ = mean(coupled, "async_time")?;
        return Ok((coupled.len(), censored, format!("sync {sync:.2} / async {async_:.2}")));
    }
    let outcomes = report.get("outcomes").and_then(Json::as_arr).ok_or("report has no outcomes")?;
    let censored = outcomes.iter().filter(|o| !bool_field(o, "completed")).count();
    Ok((outcomes.len(), censored, format!("{:.2}", mean(outcomes, "value")?)))
}

fn bool_field(j: &Json, key: &str) -> bool {
    matches!(j.get(key), Some(Json::Bool(true)))
}

fn mean(items: &[Json], key: &str) -> Result<f64, String> {
    if items.is_empty() {
        return Ok(f64::NAN);
    }
    let mut sum = 0.0;
    for item in items {
        sum += item
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("outcome is missing `{key}`"))?;
    }
    Ok(sum / items.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(coupled: bool) -> Json {
        let report = if coupled {
            Json::parse(
                r#"{"unit": "paired", "outcomes": [],
                    "coupled": [
                      {"sync_rounds": 4, "sync_completed": true,
                       "async_time": 6, "async_completed": true, "trace_steps": 90},
                      {"sync_rounds": 6, "sync_completed": true,
                       "async_time": 8, "async_completed": false, "trace_steps": 90}]}"#,
            )
            .unwrap()
        } else {
            Json::parse(
                r#"{"unit": "rounds", "outcomes": [
                      {"value": 3, "completed": true},
                      {"value": 5, "completed": true}]}"#,
            )
            .unwrap()
        };
        Json::Obj(vec![
            (
                "children".to_owned(),
                Json::Arr(vec![Json::Obj(vec![
                    ("point".to_owned(), Json::Str("graph.n=8".to_owned())),
                    ("report".to_owned(), report),
                ])]),
            ),
            (
                "summary".to_owned(),
                Json::Obj(vec![
                    ("children".to_owned(), Json::Num(1.0)),
                    ("trials".to_owned(), Json::Num(2.0)),
                    ("censored".to_owned(), Json::Num(0.0)),
                ]),
            ),
        ])
    }

    #[test]
    fn uncoupled_rows_show_the_mean() {
        let text = fleet_summary_table(&doc(false)).unwrap().to_text();
        assert!(text.contains("graph.n=8"), "{text}");
        assert!(text.contains("4.00"), "{text}");
        assert!(text.contains("1 children, 2 trials total"), "{text}");
    }

    #[test]
    fn coupled_rows_show_both_means_and_count_pairs() {
        let text = fleet_summary_table(&doc(true)).unwrap().to_text();
        assert!(text.contains("sync 5.00 / async 7.00"), "{text}");
        // One pair has async_completed=false → censored 1 of 2.
        assert!(text.contains('1'), "{text}");
    }

    #[test]
    fn malformed_documents_name_the_problem() {
        let err = fleet_summary_table(&Json::Obj(vec![])).unwrap_err();
        assert!(err.contains("children"), "{err}");
    }
}
