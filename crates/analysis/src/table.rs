//! Aligned text tables and CSV emission for experiment output.

use std::fmt;

/// A simple column-aligned table with a title and footnotes.
///
/// # Example
///
/// ```
/// use rumor_analysis::Table;
/// let mut t = Table::new("demo", &["graph", "n", "ratio"]);
/// t.add_row(vec!["star".into(), "64".into(), "1.52".into()]);
/// t.add_note("ratios should be O(1)");
/// let text = t.to_text();
/// assert!(text.contains("demo"));
/// assert!(text.contains("star"));
/// let csv = t.to_csv();
/// assert!(csv.starts_with("graph,n,ratio"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "table needs at least one column");
        Self {
            title: title.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn add_row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
        self
    }

    /// Appends a footnote shown under the table.
    pub fn add_note(&mut self, note: &str) -> &mut Self {
        self.notes.push(note.to_owned());
        self
    }

    /// Cell accessor (row, column), if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.get(col)).map(String::as_str)
    }

    /// Renders the aligned plain-text form.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header: Vec<String> =
            self.columns.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Renders CSV (header + rows; notes become trailing `#` comments).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("# {note}\n"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Formats a float with `prec` decimals (shorthand for table cells).
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_content() {
        let mut t = Table::new("t", &["a", "bbbb"]);
        t.add_row(vec!["xxx".into(), "1".into()]);
        let text = t.to_text();
        assert!(text.contains("== t =="));
        // Each data line has both cells.
        assert!(text.lines().any(|l| l.contains("xxx") && l.contains('1')));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("t", &["a,b", "c"]);
        t.add_row(vec!["x\"y".into(), "plain".into()]);
        t.add_note("hello");
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("\"x\"\"y\",plain"));
        assert!(csv.contains("# hello"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_arity_checked() {
        Table::new("t", &["a"]).add_row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn cell_accessor() {
        let mut t = Table::new("t", &["a"]);
        t.add_row(vec!["v".into()]);
        assert_eq!(t.cell(0, 0), Some("v"));
        assert_eq!(t.cell(1, 0), None);
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn fmt_f_precision() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(2.0, 0), "2");
    }
}
