//! **E23 — the sync-vs-async gap on shared topology traces.** The
//! paper's proofs are coupling arguments: two processes driven by
//! shared randomness so their spreading times compare *pathwise*. E20
//! asked the sync-vs-async question on dynamic topologies with
//! **independent** realizations — statistically the weakest possible
//! design, and unfaithful to the proof technique. This experiment
//! replaces it with the real thing: per trial, one topology realization
//! is recorded as a `TopologyTrace` and **both** protocols run on it —
//! the synchronous rounds engine snapshotting the trace at round
//! boundaries, the asynchronous engine replaying it event-exactly —
//! with a common protocol seed (common random numbers).
//!
//! The table reports, per dynamic model, the paired async/sync ratio
//! together with **both** 95 % confidence intervals computed from the
//! same 400 trials: the paired delta-method interval (covariance kept)
//! and the interval an independent-runs design — E20's — is limited to
//! (covariance dropped). Their quotient, the *shrink* column, is the
//! variance reduction the coupling buys; it equals 1 exactly when the
//! trace realization carries no spreading-time variance.
//!
//! Model parameters are chosen in the **persistent-trace** regimes
//! where topology realizations matter: slow failure/recovery
//! edge-Markov churn, *sub-connectivity* rewiring snapshots (each
//! snapshot leaves nodes isolated, so spreading is gated by the trace's
//! temporal connectivity — the Pourmiri–Mans regime), slow random
//! walks, mobility at matched density, and the frontier adversary. The
//! adversary is necessarily recorded **obliviously** (informed view
//! frozen to the source — a trace shared between two protocols cannot
//! react to either one's informed set), and its near-1 shrink is itself
//! the finding: obliviousness is exactly what strips the adversary of
//! its power, the converse of E22's adaptive-adversary slowdown.

use rumor_core::dynamic::{
    Adversary, DynamicModel, EdgeMarkov, Mobility, RandomWalk, Rewire, SnapshotFamily,
};
use rumor_core::spec::{GraphSpec, Protocol, SimSpec, Topology};
use rumor_core::RngContract;
use rumor_graph::Graph;

use crate::experiments::common::{mix_seed, ExperimentConfig};
use crate::paired::PairedSamples;
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE23;

/// The five dynamic models of the coupled sweep, parameterized for
/// persistent traces on base graph `g` (see the module docs).
pub fn coupled_models(g: &Graph) -> Vec<(&'static str, DynamicModel)> {
    let n = g.node_count() as f64;
    // Snapshots far below the connectivity threshold: every snapshot
    // leaves Theta(n^0.65) nodes isolated, so the tail of both runs
    // waits for the same straggler-connection windows of the trace.
    let sub_connectivity = 0.35 * n.ln() / n;
    vec![
        ("markov", DynamicModel::EdgeMarkov(EdgeMarkov { off_rate: 0.25, on_rate: 0.1 })),
        (
            "rewire",
            DynamicModel::Rewire(Rewire::new(2.0, SnapshotFamily::Gnp { p: sub_connectivity })),
        ),
        ("walk", DynamicModel::RandomWalk(RandomWalk::new(0.5))),
        ("mobility", DynamicModel::Mobility(Mobility::matching_density(g, 0.5, 0.1))),
        ("adversary", DynamicModel::Adversary(Adversary::new(0.5, 16, 6.0))),
    ]
}

/// Recording horizon for size `n`: far beyond the expected spreading
/// time of every model in the sweep; the topology freezes past it
/// (runs that outlive it are disclosed through the censored column).
pub fn horizon(n: usize) -> f64 {
    24.0 * (n as f64).ln()
}

/// Asynchronous step budget for size `n` (shared with CLI `--coupled`).
pub fn max_steps(n: usize) -> u64 {
    4_000 * n as u64
}

/// Synchronous round budget (shared with CLI `--coupled`).
pub const MAX_ROUNDS: u64 = 20_000;

/// The (serializable) graph of the size-`n` sweep: a `G(n, p)` just
/// above the connectivity threshold, seeded from the experiment seed —
/// so a committed `.spec` artifact reproduces the exact experiment
/// graph with no side channel.
pub fn graph_spec(n: usize, cfg: &ExperimentConfig) -> GraphSpec {
    // Sparser than E20/E22's base (1.05 vs 2 ln n / n): the closer the
    // base sits to the connectivity threshold, the more of the
    // spreading-time variance the topology realization carries.
    let p = 1.05 * (n as f64).ln() / n as f64;
    GraphSpec::Gnp { n, p, seed: mix_seed(cfg, SALT) ^ 0x23D ^ n as u64, attempts: 200 }
}

/// The complete, serializable run spec of one E23 cell: size `n`,
/// dynamic model `model_name` (a [`coupled_models`] key), under `cfg`'s
/// trial plan. This is what [`run`] executes per cell and what the
/// committed `specs/` artifacts are generated from — `run --spec`
/// replays a table line byte-for-byte.
///
/// # Panics
///
/// Panics if `model_name` is not a sweep key or the graph spec fails to
/// resolve (both are bugs in the caller).
pub fn cell_spec(n: usize, model_name: &str, cfg: &ExperimentConfig) -> SimSpec {
    let graph = graph_spec(n, cfg);
    let g = graph.resolve().expect("E23 graph specs resolve");
    cell_spec_on(graph, &g, model_name, cfg)
}

/// [`cell_spec`] with the graph already resolved (`g` must be
/// `graph.resolve()`'s output) — lets [`run`] resolve each size's graph
/// once instead of once per cell.
fn cell_spec_on(graph: GraphSpec, g: &Graph, model_name: &str, cfg: &ExperimentConfig) -> SimSpec {
    let n = g.node_count();
    let model = coupled_models(g)
        .into_iter()
        .find(|(name, _)| *name == model_name)
        .unwrap_or_else(|| panic!("unknown E23 model `{model_name}`"))
        .1;
    SimSpec::new(graph)
        .protocol(Protocol::push_pull_async())
        .topology(Topology::Model(model))
        .coupled(true)
        .horizon(horizon(n))
        .max_steps(max_steps(n))
        .max_rounds(MAX_ROUNDS)
        .trials(cfg.trials)
        .seed(mix_seed(cfg, SALT))
        .threads(cfg.threads)
        // E23's committed `specs/` goldens were recorded under the
        // legacy streams; the pin keeps them replaying byte-for-byte.
        .rng_contract(RngContract::V1)
}

/// Runs E23 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E23 / coupled traces: paired sync-vs-async on shared topology realizations (supersedes E20's independent-runs comparison)",
        &[
            "n",
            "model",
            "E[rounds_sync]",
            "E[T_async]",
            "async/sync",
            "corr",
            "ci95 paired",
            "ci95 indep",
            "shrink",
            "censored",
        ],
    );
    let sizes: Vec<usize> = if cfg.full_scale { vec![64, 256] } else { vec![48] };
    for &n in &sizes {
        let graph = graph_spec(n, cfg);
        let g = graph.resolve().expect("E23 graph specs resolve");
        let mut add_row = |name: &str, spec: SimSpec| {
            let report = spec.build().expect("valid E23 spec").run();
            let samples =
                PairedSamples::from_coupled(report.coupled_outcomes().expect("coupled report"));
            let cell = |v: Option<f64>, d: usize| match v {
                Some(x) => fmt_f(x, d),
                None => "-".to_owned(),
            };
            table.add_row(vec![
                n.to_string(),
                name.to_owned(),
                cell(samples.mean_sync(), 3),
                cell(samples.mean_async(), 3),
                cell(samples.ratio_of_means(), 3),
                cell(samples.correlation(), 3),
                cell(samples.paired_ci_half_width(), 4),
                cell(samples.unpaired_ci_half_width(), 4),
                cell(samples.ci_shrink_factor(), 3),
                samples.censored.to_string(),
            ]);
        };
        for (name, _) in coupled_models(&g) {
            add_row(name, cell_spec_on(graph.clone(), &g, name, cfg));
        }
        // The antithetic satellite: the slow-churn model re-run with
        // antithetic protocol-seed pairs on the same traces — protocol
        // noise halves, so the paired CI must narrow further at equal
        // trial count.
        // Antithetic pairing only exists under the v2 contract; this
        // row is computed live (never committed as an artifact), so it
        // rides the superposition scheduler.
        add_row(
            "markov+anti",
            cell_spec_on(graph.clone(), &g, "markov", cfg)
                .antithetic(true)
                .rng_contract(RngContract::V2),
        );
    }
    table.add_note(
        "per trial one TopologyTrace is recorded and BOTH protocols run on it with a common \
         protocol seed; `ci95 paired` keeps the covariance between the columns, `ci95 indep` \
         drops it — the interval E20's independent-runs design is limited to at the same trial \
         count; `shrink` = indep/paired",
    );
    table.add_note(
        "1 synchronous round corresponds to 1 asynchronous time unit (footnote 3); the trace \
         advances to time r-1 before round r",
    );
    table.add_note(&format!(
        "trace horizon 24 ln n (topology freezes beyond it); rewire snapshots are drawn at the \
         sub-connectivity density 0.35 ln n / n, so spreading is gated by the trace's temporal \
         connectivity (both runs wait for the same straggler-connection windows); {}",
        "the adversary is recorded obliviously (informed view frozen to the source)"
    ));
    table.add_note(
        "censored = trials where either run exhausted its budget; such trials are excluded from \
         the pairing, never averaged",
    );
    table.add_note(
        "markov+anti re-runs the markov row with antithetic protocol-seed pairs: each trace is \
         recorded once and both protocols run twice (seed and complement-seed), reporting pair \
         averages — protocol-clock noise halves, so its paired CI is narrower than markov's at \
         the same trial count",
    );
    table
}

/// Test hook: `(model, ci-shrink factor)` pairs for the size-`n` rows.
/// Degenerate cells (`"-"`, rendered when a row has no estimate) come
/// back as NaN so callers see the data condition, not a parse panic.
pub fn shrink_factors(table: &Table, n: usize) -> Vec<(String, f64)> {
    numeric_column(table, n, 8)
}

/// Test hook: `(model, async/sync ratio)` pairs for the size-`n` rows;
/// `"-"` cells come back as NaN (see [`shrink_factors`]).
pub fn paired_ratios(table: &Table, n: usize) -> Vec<(String, f64)> {
    numeric_column(table, n, 4)
}

fn numeric_column(table: &Table, n: usize, col: usize) -> Vec<(String, f64)> {
    (0..table.row_count())
        .filter(|&r| table.cell(r, 0) == Some(n.to_string().as_str()))
        .map(|r| {
            let value = table.cell(r, col).unwrap().parse().unwrap_or(f64::NAN);
            (table.cell(r, 1).unwrap().to_owned(), value)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupled_sweep_runs_and_the_coupling_buys_variance() {
        let cfg = ExperimentConfig::quick().with_trials(60);
        let table = run(&cfg);
        let ratios = paired_ratios(&table, 48);
        let names: Vec<&str> = ratios.iter().map(|(m, _)| m.as_str()).collect();
        assert_eq!(names, ["markov", "rewire", "walk", "mobility", "adversary", "markov+anti"]);
        for (name, r) in &ratios {
            assert!(*r > 0.3 && *r < 3.0, "{name}: implausible paired ratio {r}");
        }
        let shrinks = shrink_factors(&table, 48);
        // Slow churn leaves the most shared variance in the trace: the
        // paired CI must be strictly narrower than the independent one.
        let markov = shrinks.iter().find(|(m, _)| m == "markov").unwrap().1;
        assert!(markov > 1.05, "markov shrink {markov} should demonstrate the coupling");
        // Across the sweep the coupling must help on average (a weakly
        // coupled model can sit near 1, never systematically below).
        let mean_shrink: f64 = shrinks.iter().map(|(_, s)| s).sum::<f64>() / shrinks.len() as f64;
        assert!(mean_shrink > 1.0, "mean shrink {mean_shrink} <= 1: coupling bought nothing");
    }

    /// The antithetic satellite: pair-averaged protocol runs on shared
    /// traces reduce the paired interval further at equal trial count.
    #[test]
    fn antithetic_pairs_shrink_the_paired_interval() {
        let cfg = ExperimentConfig::quick().with_trials(60);
        let n = 48;
        let ci = |spec: SimSpec| {
            let report = spec.build().unwrap().run();
            PairedSamples::from_coupled(report.coupled_outcomes().unwrap())
                .paired_ci_half_width()
                .expect("quick E23 markov runs complete")
        };
        let plain = ci(cell_spec(n, "markov", &cfg));
        let anti = ci(cell_spec(n, "markov", &cfg).antithetic(true).rng_contract(RngContract::V2));
        assert!(
            anti < plain,
            "antithetic pairing must narrow the paired CI: anti {anti} vs plain {plain}"
        );
    }
}
