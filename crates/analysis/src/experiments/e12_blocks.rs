//! **E12 — the block decomposition (§5).** Verifies Lemma 13's subset
//! invariant (`I_k(pp-a) ⊆ I_k(pp)` after every block) and Lemma 14's
//! accounting (`E[ρ_τ] = O(E[τ]/√n + √n)`), and breaks the blocks down by
//! closing condition.

use rumor_core::coupling::blocks::run_block_coupling;
use rumor_core::runner::run_trials_parallel;
use rumor_sim::rng::Xoshiro256PlusPlus;
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{mix_seed, standard_suite, ExperimentConfig};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE12;

/// Runs E12 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E12 / block decomposition: Lemma 13 invariant and Lemma 14 accounting",
        &["graph", "n", "E[steps]", "E[rounds]", "rounds/budget", "E[special]", "invariant"],
    );
    let n = if cfg.full_scale { 256 } else { 48 };
    let runs = (cfg.trials / 4).max(10);
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x6C7);
    let mut worst_ratio: f64 = 0.0;
    for entry in standard_suite(n, &mut graph_rng) {
        let n_actual = entry.graph.node_count();
        let stats = run_trials_parallel(runs, mix_seed(cfg, SALT), cfg.threads, |_, rng| {
            let seed = rng.next_u64();
            run_block_coupling(&entry.graph, entry.source, seed, 500_000_000)
        });
        let invariant_all = stats.iter().all(|s| s.completed && s.subset_invariant_held);
        let steps: OnlineStats = stats.iter().map(|s| s.steps as f64).collect();
        let rounds: OnlineStats = stats.iter().map(|s| s.rounds as f64).collect();
        let ratio: OnlineStats =
            stats.iter().map(|s| s.rounds as f64 / s.lemma14_budget(n_actual)).collect();
        let special: OnlineStats = stats.iter().map(|s| s.special_blocks as f64).collect();
        worst_ratio = worst_ratio.max(ratio.mean());
        table.add_row(vec![
            entry.name.to_owned(),
            n_actual.to_string(),
            fmt_f(steps.mean(), 0),
            fmt_f(rounds.mean(), 1),
            fmt_f(ratio.mean(), 3),
            fmt_f(special.mean(), 2),
            if invariant_all { "held".into() } else { "VIOLATED".into() },
        ]);
    }
    table.add_note("budget = steps/sqrt(n) + sqrt(n); Lemma 14 predicts rounds/budget = O(1)");
    table.add_note(&format!("worst mean rounds/budget = {}", fmt_f(worst_ratio, 3)));
    table.add_note("invariant = Lemma 13 subset check after every block of every run");
    table
}

/// Whether the invariant column reads "held" on every row (test hook).
pub fn invariant_held_everywhere(table: &Table) -> bool {
    (0..table.row_count()).all(|r| table.cell(r, 6) == Some("held"))
}

/// Largest mean rounds/budget ratio (test hook).
pub fn worst_budget_ratio(table: &Table) -> f64 {
    (0..table.row_count())
        .map(|r| table.cell(r, 4).unwrap().parse::<f64>().unwrap())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariant_holds_and_accounting_is_constant() {
        let cfg = ExperimentConfig::quick().with_trials(40);
        let table = run(&cfg);
        assert!(invariant_held_everywhere(&table), "Lemma 13 failed");
        let worst = worst_budget_ratio(&table);
        assert!(worst < 10.0, "Lemma 14 ratio {worst} too large");
    }
}
