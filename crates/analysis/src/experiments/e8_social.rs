//! **E8 — social-network topologies (§1).** On Chung–Lu power-law graphs
//! and preferential-attachment graphs, the asynchronous protocol spreads
//! the rumor to a large fraction of the nodes significantly faster than
//! the synchronous one (Fountoulakis–Panagiotou–Sauerwald 2012,
//! Doerr–Fouz–Friedrich 2012) — the observation that sparked interest in
//! the asynchronous model.
//!
//! For each topology we measure the time to inform 50 %, 99 %, and 100 %
//! of the nodes under both models. Asynchrony's advantage concentrates in
//! the large-fraction regime; the final stragglers can erase it at 100 %.

use rumor_core::asynchronous::AsyncView;
use rumor_core::runner::{default_max_steps, run_trials_parallel};
use rumor_core::{run_async, run_sync, Mode};
use rumor_graph::generators;
use rumor_sim::rng::Xoshiro256PlusPlus;
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{mix_seed, sync_round_budget, ExperimentConfig, SuiteEntry};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE8;

/// Per-model mean times to reach 50 % / 99 % / 100 % informed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FractionTimes {
    /// Mean time to 50 % informed.
    pub half: f64,
    /// Mean time to 99 % informed.
    pub most: f64,
    /// Mean time to 100 % informed.
    pub all: f64,
}

fn sync_fraction_times(entry: &SuiteEntry, cfg: &ExperimentConfig, salt: u64) -> FractionTimes {
    let budget = sync_round_budget(&entry.graph);
    let rows = run_trials_parallel(cfg.trials, mix_seed(cfg, salt), cfg.threads, |_, rng| {
        let out = run_sync(&entry.graph, entry.source, Mode::PushPull, rng, budget);
        (
            out.rounds_to_fraction(0.5).expect("completed") as f64,
            out.rounds_to_fraction(0.99).expect("completed") as f64,
            out.rounds_to_fraction(1.0).expect("completed") as f64,
        )
    });
    collect(rows)
}

fn async_fraction_times(entry: &SuiteEntry, cfg: &ExperimentConfig, salt: u64) -> FractionTimes {
    let budget = default_max_steps(&entry.graph);
    let rows = run_trials_parallel(cfg.trials, mix_seed(cfg, salt), cfg.threads, |_, rng| {
        let out = run_async(
            &entry.graph,
            entry.source,
            Mode::PushPull,
            AsyncView::GlobalClock,
            rng,
            budget,
        );
        (
            out.time_to_fraction(0.5).expect("completed"),
            out.time_to_fraction(0.99).expect("completed"),
            out.time_to_fraction(1.0).expect("completed"),
        )
    });
    collect(rows)
}

fn collect(rows: Vec<(f64, f64, f64)>) -> FractionTimes {
    let half: OnlineStats = rows.iter().map(|r| r.0).collect();
    let most: OnlineStats = rows.iter().map(|r| r.1).collect();
    let all: OnlineStats = rows.iter().map(|r| r.2).collect();
    FractionTimes { half: half.mean(), most: most.mean(), all: all.mean() }
}

/// Runs E8 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E8 / social networks: time to inform 50% / 99% / 100% of nodes",
        &["graph", "n", "model", "t(50%)", "t(99%)", "t(100%)"],
    );
    let n = if cfg.full_scale { 2000 } else { 300 };
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x687);
    let entries = vec![
        SuiteEntry {
            name: "chung-lu-2.5",
            graph: generators::chung_lu_giant(n, 2.5, 8.0, 0.7, &mut graph_rng),
            source: 0,
        },
        SuiteEntry {
            name: "pref-attach-2",
            graph: generators::preferential_attachment(n, 2, &mut graph_rng),
            source: (n - 1) as u32,
        },
    ];
    for entry in &entries {
        let s = sync_fraction_times(entry, cfg, SALT);
        let a = async_fraction_times(entry, cfg, SALT + 1);
        let n_actual = entry.graph.node_count().to_string();
        table.add_row(vec![
            entry.name.to_owned(),
            n_actual.clone(),
            "sync".into(),
            fmt_f(s.half, 2),
            fmt_f(s.most, 2),
            fmt_f(s.all, 2),
        ]);
        table.add_row(vec![
            entry.name.to_owned(),
            n_actual,
            "async".into(),
            fmt_f(a.half, 2),
            fmt_f(a.most, 2),
            fmt_f(a.all, 2),
        ]);
    }
    table.add_note("paper's claim: async beats sync at large fractions on these topologies");
    table
}

/// Extracts the (sync, async) mean times at a fraction column for a given
/// family (test hook). `col` is 3 (50 %), 4 (99 %) or 5 (100 %).
pub fn model_pair(table: &Table, family: &str, col: usize) -> Option<(f64, f64)> {
    let mut sync = None;
    let mut asy = None;
    for r in 0..table.row_count() {
        if table.cell(r, 0) == Some(family) {
            let value: f64 = table.cell(r, col)?.parse().ok()?;
            match table.cell(r, 2)? {
                "sync" => sync = Some(value),
                "async" => asy = Some(value),
                _ => {}
            }
        }
    }
    Some((sync?, asy?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_is_faster_to_the_bulk_on_social_graphs() {
        let cfg = ExperimentConfig::quick().with_trials(50);
        let table = run(&cfg);
        for family in ["chung-lu-2.5", "pref-attach-2"] {
            let (sync_most, async_most) = model_pair(&table, family, 4).expect("rows present");
            assert!(
                async_most < sync_most * 1.1,
                "{family}: async t(99%) = {async_most} not faster than sync {sync_most}"
            );
        }
    }
}
