//! **E20 — the sync-vs-async gap under rewiring.** The paper's central
//! question — how asynchrony changes spreading time — transplanted to
//! dynamic topologies: both models run on a `G(n, p)` whose topology is
//! replaced by a fresh snapshot every `k` units (rounds for the
//! synchronous protocol, time units for the asynchronous one; the two
//! scales correspond via footnote 3).
//!
//! On static classical graphs the two models agree up to constant
//! factors (E7). Rewiring only helps mixing, so the async/sync ratio
//! should remain Θ(1) across rewiring periods — the constant-factor
//! relationship survives topology churn.
//!
//! **Superseded by E23** (kept for continuity): this experiment
//! compares *independent* sync and async realizations, so its ratio
//! estimate carries the full variance of both columns.
//! [`e23_coupled_gap`](crate::experiments::e23_coupled_gap) asks the
//! same question with both protocols driven by one shared
//! [`TopologyTrace`](rumor_core::TopologyTrace) and common random
//! numbers — the paper's coupling technique as an estimator — and its
//! paired confidence intervals are strictly narrower at equal trial
//! counts.

use rumor_core::dynamic::{DynamicModel, Rewire, SnapshotFamily};
use rumor_core::runner;
use rumor_core::spec::{Protocol, SimSpec, Topology};
use rumor_core::Mode;
use rumor_graph::generators;
use rumor_sim::rng::Xoshiro256PlusPlus;

use crate::experiments::common::{mix_seed, ratio_cell, CensoredSamples, ExperimentConfig};
use crate::table::Table;

const SALT: u64 = 0xE20;

/// Rewiring periods swept (`None` = never rewire, the static row).
pub const PERIODS: [Option<u64>; 4] = [None, Some(16), Some(4), Some(1)];

/// Runs E20 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E20 / rewiring: the sync-vs-async gap stays Theta(1) on dynamic topologies",
        &["n", "period", "E[rounds_sync]", "E[T_async]", "async/sync"],
    );
    let sizes: Vec<usize> = if cfg.full_scale { vec![64, 256] } else { vec![48] };
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x20D);
    let mut censored_total = 0usize;
    for &n in &sizes {
        let p = 2.0 * (n as f64).ln() / n as f64;
        let g = generators::gnp_connected(n, p, &mut graph_rng, 200);
        let family = SnapshotFamily::Gnp { p };
        let max_steps = runner::default_max_steps(&g).saturating_mul(8);
        let max_rounds = 1_000 * n as u64 + 10_000;
        for period in PERIODS {
            // The same topology axis serves both protocols; the spec
            // layer routes sync + rewire to the snapshot-rounds engine
            // and async + rewire to the event engine.
            let topology = match period {
                Some(k) => Topology::Model(DynamicModel::Rewire(Rewire::new(k as f64, family))),
                None => Topology::Static,
            };
            let sync_report = SimSpec::on_graph(&g)
                .protocol(Protocol::Sync { mode: Mode::PushPull })
                .topology(topology.clone())
                .trials(cfg.trials)
                .seed(mix_seed(cfg, SALT))
                .threads(cfg.threads)
                .max_rounds(max_rounds)
                .build()
                .expect("valid E20 sync spec")
                .run();
            let async_report = SimSpec::on_graph(&g)
                .protocol(Protocol::push_pull_async())
                .topology(topology)
                .trials(cfg.trials)
                .seed(mix_seed(cfg, SALT + 1))
                .threads(cfg.threads)
                .max_steps(max_steps)
                .build()
                .expect("valid E20 async spec")
                .run();
            let sync_samples = CensoredSamples::from_report(&sync_report);
            let async_samples = CensoredSamples::from_report(&async_report);
            censored_total += sync_samples.censored + async_samples.censored;
            table.add_row(vec![
                n.to_string(),
                period.map_or("static".to_owned(), |k| k.to_string()),
                sync_samples.mean_cell(3),
                async_samples.mean_cell(3),
                ratio_cell(async_samples.mean_completed(), sync_samples.mean_completed(), 3),
            ]);
        }
    }
    table.add_note("1 synchronous round corresponds to 1 asynchronous time unit (footnote 3)");
    table.add_note("the async/sync ratio should stay in a constant band across periods");
    table.add_note(
        "superseded by E23: these columns come from INDEPENDENT sync/async runs; E23 pairs \
         them over shared topology traces and its CIs are narrower at equal trial counts",
    );
    table.add_note(&format!(
        "means average completed trials only; budget-censored trials across all cells: {censored_total}"
    ));
    table
}

/// The async/sync ratio column (test hook).
pub fn ratios(table: &Table) -> Vec<f64> {
    (0..table.row_count()).map(|r| table.cell(r, 4).unwrap().parse().unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_stays_in_a_constant_band_under_rewiring() {
        let cfg = ExperimentConfig::quick().with_trials(40);
        let table = run(&cfg);
        let rs = ratios(&table);
        assert_eq!(rs.len(), PERIODS.len());
        let max = rs.iter().cloned().fold(f64::MIN, f64::max);
        let min = rs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 3.0,
            "async/sync gap should stay constant-factor under rewiring: {rs:?}"
        );
        assert!(rs.iter().all(|&r| r > 0.2 && r < 10.0), "implausible gap: {rs:?}");
    }
}
