//! **E2 — Theorem 2.** `E[T(pp-a)] = Ω(E[T(pp)] / √n)`, equivalently
//! `E[T(pp)] = O(√n · E[T(pp-a)] + √n)`.
//!
//! For every family and size, estimate both expectations and report
//! `Ê[T_sync] / (√n · Ê[T_async] + √n)`. Theorem 2 bounds this by a
//! universal constant. On most graphs the bound is far from tight (the
//! ratio is tiny); the diamond family is the known near-extremal case.

use rumor_core::asynchronous::AsyncView;
use rumor_core::Mode;
use rumor_sim::rng::Xoshiro256PlusPlus;
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{
    mix_seed, sample_async, sample_sync, standard_suite, sweep_sizes, ExperimentConfig,
};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE2;

/// Runs E2 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E2 / Theorem 2: E[T_sync] vs sqrt(n)*E[T_async] + sqrt(n) (push-pull)",
        &["graph", "n", "E[T_sync]", "E[T_async]", "sqrt(n)", "ratio"],
    );
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x627);
    let mut worst: f64 = 0.0;
    for n in sweep_sizes(cfg) {
        for entry in standard_suite(n, &mut graph_rng) {
            let n_actual = entry.graph.node_count();
            let sync: OnlineStats =
                sample_sync(&entry, Mode::PushPull, cfg, SALT).into_iter().collect();
            let asy: OnlineStats =
                sample_async(&entry, Mode::PushPull, AsyncView::GlobalClock, cfg, SALT + 1)
                    .into_iter()
                    .collect();
            let sqrt_n = (n_actual as f64).sqrt();
            let ratio = sync.mean() / (sqrt_n * asy.mean() + sqrt_n);
            worst = worst.max(ratio);
            table.add_row(vec![
                entry.name.to_owned(),
                n_actual.to_string(),
                fmt_f(sync.mean(), 2),
                fmt_f(asy.mean(), 3),
                fmt_f(sqrt_n, 1),
                fmt_f(ratio, 4),
            ]);
        }
    }
    table.add_note(&format!(
        "Theorem 2 predicts ratio = O(1); worst observed = {} (diamonds is the near-extremal family)",
        fmt_f(worst, 4)
    ));
    table
}

/// The largest ratio in a finished E2 table (test hook).
pub fn worst_ratio(table: &Table) -> f64 {
    (0..table.row_count())
        .map(|r| table.cell(r, 5).expect("ratio column").parse::<f64>().expect("numeric"))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_bounds_ratio() {
        let cfg = ExperimentConfig::quick().with_trials(40);
        let table = run(&cfg);
        assert!(table.row_count() >= 10);
        let worst = worst_ratio(&table);
        // The constant in Theorem 2 is modest; 3 is already generous.
        assert!(worst < 3.0, "ratio {worst} exceeds plausibility");
        assert!(worst > 0.0);
    }
}
