//! **E21 — the engine layer: sharded PDES exactness, within-trial
//! speedup, and lazy-clock bookkeeping.** Three claims about the
//! engines built in the `rumor_core::engine` refactor:
//!
//! * **K = 1 replay** — the sharded conservative-lookahead engine with
//!   one shard replays the sequential dynamic engine *seed-for-seed*:
//!   every trial's outcome (spreading time, informed trace) and final
//!   RNG state are compared bit-for-bit, and the `E[T]` ratio is
//!   exactly 1. This is the sharding analogue of E19's churn-0 row.
//! * **K > 1 exactness-in-distribution + within-trial speedup** — more
//!   shards sample the *same* process law (means agree within
//!   Monte-Carlo error) while spreading one trial across worker
//!   threads. Wall-clock per trial and local-events-per-window are
//!   reported on a necklace-of-cliques, the low-cut regime where
//!   conservative PDES has parallelism to harvest; speedup is capped by
//!   the build machine's available parallelism (reported in the notes),
//!   whereas events/window is hardware-independent headroom.
//! * **lazy clocks** — the lazy per-edge-clock edge-Markov engine
//!   agrees with the eager queue engine in distribution while keeping
//!   *no pending flip events*: its topology bookkeeping is the number
//!   of edges actually touched. At full scale the table includes an
//!   `n = 10⁶` run that is far outside the eager engine's practical
//!   envelope.

use std::time::Instant;

use rumor_core::dynamic::{run_dynamic, DynamicModel, EdgeMarkov};
use rumor_core::engine::{run_dynamic_sharded, run_edge_markov_lazy};
use rumor_core::spec::{Engine, Protocol, SimSpec, Topology};
use rumor_core::{runner, Mode};
use rumor_graph::generators;
use rumor_sim::rng::{SeedStream, Xoshiro256PlusPlus};
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{
    default_threads, mix_seed, ratio_cell, CensoredSamples, ExperimentConfig,
};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE21;

/// Shard counts swept in the speedup part (quick configs use a prefix).
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs E21 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E21 / engines: sharded PDES replays K=1 seed-for-seed and parallelizes one trial; lazy clocks make bookkeeping O(touched)",
        &["part", "config", "metric", "engine", "reference", "ratio"],
    );
    part_exactness(cfg, &mut table);
    part_speedup(cfg, &mut table);
    part_lazy(cfg, &mut table);
    table.add_note(
        "exact: K=1 rows compare the sharded engine against run_dynamic per trial, bit-for-bit \
         (outcome, informed trace, final RNG state); `bit-identical trials` must equal the trial \
         count and the E[T] ratio is exactly 1.000",
    );
    table.add_note(
        "speedup: ms/trial is wall-clock on the build machine and is capped by its available \
         parallelism; events/window is the hardware-independent measure of how much local work \
         each synchronization window amortizes (the partition-cut property that makes sharding \
         pay off)",
    );
    table
        .add_note(&format!("build machine available parallelism: {} thread(s)", default_threads()));
    table.add_note(
        "speedup above 1 is possible even single-threaded: a fully informed shard freezes \
         (its remaining local events are provably no-ops), while the sequential engine must \
         simulate every tick until global completion",
    );
    table.add_note(
        "lazy: clocks touched vs base edges is the engine's whole topology bookkeeping; the \
         eager engine keeps one pending flip event per base edge instead",
    );
    table
}

/// K = 1 bit-exactness and K > 1 agreement in distribution.
fn part_exactness(cfg: &ExperimentConfig, table: &mut Table) {
    let n = if cfg.full_scale { 96 } else { 48 };
    let p = 2.0 * (n as f64).ln() / n as f64;
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x21A);
    let g = generators::gnp_connected(n, p, &mut graph_rng, 200);
    let model = DynamicModel::EdgeMarkov(EdgeMarkov { off_rate: 1.0, on_rate: 1.0 });
    let max_steps = runner::default_max_steps(&g).saturating_mul(8);
    let config = format!("gnp-{n} nu=1");

    // Per-trial bit comparison at K = 1, including the final RNG state.
    // Censored trials still compare bit-for-bit but are excluded from
    // the E[T] columns (their times are lower bounds, not samples).
    let mut identical = 0usize;
    let mut seq_outcomes = Vec::with_capacity(cfg.trials);
    let mut k1_outcomes = Vec::with_capacity(cfg.trials);
    let seeds: Vec<u64> = SeedStream::new(mix_seed(cfg, SALT)).take(cfg.trials).collect();
    for &seed in &seeds {
        let mut a = Xoshiro256PlusPlus::seed_from(seed);
        let seq = run_dynamic(&g, 0, Mode::PushPull, &model, &mut a, max_steps);
        let mut b = Xoshiro256PlusPlus::seed_from(seed);
        let sharded = run_dynamic_sharded(&g, 0, Mode::PushPull, &model, 1, &mut b, max_steps);
        if sharded.outcome == seq && a.next_u64() == b.next_u64() {
            identical += 1;
        }
        seq_outcomes.push((seq.time, seq.completed));
        k1_outcomes.push((sharded.outcome.time, sharded.outcome.completed));
    }
    let seq_stats = CensoredSamples::from_outcomes(&seq_outcomes);
    let k1_stats = CensoredSamples::from_outcomes(&k1_outcomes);
    table.add_row(vec![
        "exact".into(),
        config.clone(),
        "bit-identical trials (K=1)".into(),
        identical.to_string(),
        cfg.trials.to_string(),
        fmt_f(identical as f64 / cfg.trials as f64, 3),
    ]);
    table.add_row(vec![
        "exact".into(),
        config.clone(),
        "E[T] K=1".into(),
        k1_stats.mean_cell(3),
        seq_stats.mean_cell(3),
        ratio_cell(k1_stats.mean_completed(), seq_stats.mean_completed(), 3),
    ]);

    // K > 1: same law, independent samples.
    for k in [2usize, 4] {
        let stats = CensoredSamples::from_report(
            &SimSpec::on_graph(&g)
                .protocol(Protocol::push_pull_async())
                .topology(Topology::Model(model))
                .engine(Engine::Sharded { shards: k })
                .trials(cfg.trials)
                .seed(mix_seed(cfg, SALT + k as u64))
                .max_steps(max_steps)
                .build()
                .expect("valid E21 sharded spec")
                .run(),
        );
        table.add_row(vec![
            "exact".into(),
            config.clone(),
            format!("E[T] K={k} ({} censored)", stats.censored),
            stats.mean_cell(3),
            seq_stats.mean_cell(3),
            ratio_cell(stats.mean_completed(), seq_stats.mean_completed(), 3),
        ]);
    }
}

/// Wall-clock per trial and events per window across shard counts, on a
/// low-cut topology (a necklace of cliques partitioned at the bridges).
fn part_speedup(cfg: &ExperimentConfig, table: &mut Table) {
    let (cliques, size, trials, shard_counts): (usize, usize, usize, &[usize]) =
        if cfg.full_scale { (8, 512, 3, &SHARD_COUNTS) } else { (4, 64, 2, &SHARD_COUNTS[..3]) };
    let g = generators::necklace_of_cliques(cliques, size);
    let n = g.node_count();
    let config = format!("necklace {cliques}x{size}");
    let max_steps = runner::default_max_steps(&g);
    let seeds: Vec<u64> = SeedStream::new(mix_seed(cfg, SALT + 100)).take(trials).collect();

    let mut base_ms = f64::NAN;
    for &k in shard_counts {
        let mut windows = OnlineStats::new();
        let mut times = OnlineStats::new();
        let started = Instant::now();
        for &seed in &seeds {
            let mut rng = Xoshiro256PlusPlus::seed_from(seed);
            let out = run_dynamic_sharded(
                &g,
                0,
                Mode::PushPull,
                &DynamicModel::Static,
                k,
                &mut rng,
                max_steps,
            );
            assert!(out.outcome.completed, "speedup run must complete (n = {n}, K = {k})");
            windows.push(out.events_per_window());
            times.push(out.outcome.time);
        }
        let ms_per_trial = started.elapsed().as_secs_f64() * 1e3 / trials as f64;
        if k == 1 {
            base_ms = ms_per_trial;
        }
        table.add_row(vec![
            "speedup".into(),
            config.clone(),
            format!("ms/trial K={k}"),
            fmt_f(ms_per_trial, 1),
            fmt_f(base_ms, 1),
            fmt_f(base_ms / ms_per_trial, 2),
        ]);
        table.add_row(vec![
            "speedup".into(),
            config.clone(),
            format!("events/window K={k}"),
            fmt_f(windows.mean(), 0),
            "-".into(),
            "-".into(),
        ]);
    }
}

/// Lazy-clock engine vs the eager queue engine, plus the large-n
/// feasibility run at full scale.
fn part_lazy(cfg: &ExperimentConfig, table: &mut Table) {
    let n = if cfg.full_scale { 4096 } else { 256 };
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x21C);
    let g = generators::random_regular_connected(n, 6, &mut graph_rng, 500);
    let model = EdgeMarkov::symmetric(0.5);
    let trials = cfg.trials.min(200);
    let max_steps = runner::default_max_steps(&g);
    let config = format!("rr6-{n} nu=0.5");

    let base_spec = |engine: Engine, salt: u64| {
        SimSpec::on_graph(&g)
            .protocol(Protocol::push_pull_async())
            .topology(Topology::Model(DynamicModel::EdgeMarkov(model)))
            .engine(engine)
            .trials(trials)
            .seed(mix_seed(cfg, salt))
            .max_steps(max_steps)
            .build()
            .expect("valid E21 lazy spec")
    };
    let lazy_stats = CensoredSamples::from_report(&base_spec(Engine::Lazy, SALT + 200).run());
    let eager_stats =
        CensoredSamples::from_report(&base_spec(Engine::Sequential, SALT + 201).run());
    table.add_row(vec![
        "lazy".into(),
        config.clone(),
        "E[T] lazy vs eager".into(),
        lazy_stats.mean_cell(3),
        eager_stats.mean_cell(3),
        ratio_cell(lazy_stats.mean_completed(), eager_stats.mean_completed(), 3),
    ]);
    let probe = run_edge_markov_lazy(
        &g,
        0,
        Mode::PushPull,
        model,
        &mut Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT + 202)),
        max_steps,
    );
    table.add_row(vec![
        "lazy".into(),
        config,
        "clocks touched".into(),
        probe.clocks_touched.to_string(),
        probe.base_edges.to_string(),
        fmt_f(probe.clocks_touched as f64 / probe.base_edges as f64, 3),
    ]);

    if cfg.full_scale {
        // The run the eager engine cannot do: one million nodes under
        // churn, one trial, no pending-flip queue at all.
        let big_n = 1_000_000;
        let mut big_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x21F);
        let big = generators::random_regular_connected(big_n, 6, &mut big_rng, 50);
        let out = run_edge_markov_lazy(
            &big,
            0,
            Mode::PushPull,
            model,
            &mut Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT + 203)),
            400_000_000,
        );
        assert!(out.completed, "n = 10^6 lazy run must complete");
        let config = format!("rr6-{big_n} nu=0.5");
        table.add_row(vec![
            "lazy".into(),
            config.clone(),
            "T (1 trial, n=10^6)".into(),
            fmt_f(out.time, 3),
            "-".into(),
            "-".into(),
        ]);
        table.add_row(vec![
            "lazy".into(),
            config.clone(),
            "steps (1 trial)".into(),
            out.steps.to_string(),
            "-".into(),
            "-".into(),
        ]);
        table.add_row(vec![
            "lazy".into(),
            config,
            "clocks touched".into(),
            out.clocks_touched.to_string(),
            out.base_edges.to_string(),
            fmt_f(out.clocks_touched as f64 / out.base_edges as f64, 3),
        ]);
    }
}

/// Test hook: the (metric, ratio) pairs of a part's rows.
pub fn part_ratios(table: &Table, part: &str) -> Vec<(String, String)> {
    (0..table.row_count())
        .filter(|&r| table.cell(r, 0) == Some(part))
        .map(|r| (table.cell(r, 2).unwrap().to_owned(), table.cell(r, 5).unwrap().to_owned()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k1_is_bit_exact_and_engines_agree() {
        let cfg = ExperimentConfig::quick().with_trials(30);
        let table = run(&cfg);

        let exact = part_ratios(&table, "exact");
        let (bit_metric, bit_ratio) = &exact[0];
        assert!(bit_metric.contains("bit-identical"));
        assert_eq!(bit_ratio, "1.000", "every K=1 trial must replay bit-for-bit");
        let (_, k1_ratio) = &exact[1];
        assert_eq!(k1_ratio, "1.000", "K=1 E[T] ratio must be exactly 1");
        for (metric, ratio) in &exact[2..] {
            let r: f64 = ratio.parse().unwrap();
            assert!((r - 1.0).abs() < 0.25, "{metric} ratio {r} too far from 1");
        }

        let lazy = part_ratios(&table, "lazy");
        let (_, lazy_ratio) = &lazy[0];
        let r: f64 = lazy_ratio.parse().unwrap();
        assert!((r - 1.0).abs() < 0.25, "lazy/eager ratio {r} too far from 1");
        let (_, touched_ratio) = &lazy[1];
        let tr: f64 = touched_ratio.parse().unwrap();
        assert!(tr > 0.0 && tr <= 1.0, "touched fraction {tr} out of range");

        // Speedup rows exist for every swept shard count.
        let speedup = part_ratios(&table, "speedup");
        assert_eq!(speedup.len(), 2 * 3, "ms/trial + events/window per K");
    }
}
