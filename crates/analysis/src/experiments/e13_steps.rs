//! **E13 — footnote 3.** The asynchronous spreading time can also be
//! measured in *steps*; the expected number of steps divided by `n`
//! equals the expected time in time units (each step takes `Exp(n)` time,
//! independent of the process history).
//!
//! We estimate both sides from the same trials and report the relative
//! difference, which should vanish as trials grow.

use rumor_core::asynchronous::AsyncView;
use rumor_core::runner::{default_max_steps, run_trials_parallel};
use rumor_core::{run_async, Mode};
use rumor_sim::rng::Xoshiro256PlusPlus;
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{mix_seed, standard_suite, ExperimentConfig};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE13;

/// Runs E13 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E13 / footnote 3: E[steps]/n equals E[T] in time units",
        &["graph", "n", "E[T]", "E[steps]/n", "rel diff"],
    );
    let n = if cfg.full_scale { 256 } else { 48 };
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x6D7);
    let mut worst: f64 = 0.0;
    for entry in standard_suite(n, &mut graph_rng) {
        let n_actual = entry.graph.node_count() as f64;
        let budget = default_max_steps(&entry.graph);
        let rows = run_trials_parallel(cfg.trials, mix_seed(cfg, SALT), cfg.threads, |_, rng| {
            let out = run_async(
                &entry.graph,
                entry.source,
                Mode::PushPull,
                AsyncView::GlobalClock,
                rng,
                budget,
            );
            (out.time, out.steps as f64)
        });
        let time: OnlineStats = rows.iter().map(|r| r.0).collect();
        let steps: OnlineStats = rows.iter().map(|r| r.1 / n_actual).collect();
        let rel = (time.mean() - steps.mean()).abs() / time.mean();
        worst = worst.max(rel);
        table.add_row(vec![
            entry.name.to_owned(),
            entry.graph.node_count().to_string(),
            fmt_f(time.mean(), 3),
            fmt_f(steps.mean(), 3),
            fmt_f(rel, 4),
        ]);
    }
    table.add_note(&format!(
        "equality holds in expectation; worst relative difference = {}",
        fmt_f(worst, 4)
    ));
    table
}

/// Largest relative difference (test hook).
pub fn worst_rel_diff(table: &Table) -> f64 {
    (0..table.row_count())
        .map(|r| table.cell(r, 4).unwrap().parse::<f64>().unwrap())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_over_n_equals_time() {
        let cfg = ExperimentConfig::quick().with_trials(150);
        let table = run(&cfg);
        let worst = worst_rel_diff(&table);
        assert!(worst < 0.1, "steps/n deviates from time by {worst}");
    }
}
