//! **E14 — the Richardson / first-passage-percolation correspondence.**
//! On a `d`-regular graph, asynchronous push–pull is exactly FPP with
//! i.i.d. `Exp(2/d)` edge weights (Poisson thinning; §1 cites the
//! hypercube case as Richardson's model). We compare the spreading-time
//! samples of the event-driven engine and the Dijkstra-based FPP
//! realization on hypercubes of growing dimension.

use rumor_core::asynchronous::AsyncView;
use rumor_core::fpp::async_pushpull_as_fpp;
use rumor_core::runner::{default_max_steps, run_trials_parallel};
use rumor_core::{run_async, Mode};
use rumor_graph::generators;
use rumor_sim::stats::{ks_statistic, OnlineStats};

use crate::experiments::common::{mix_seed, ExperimentConfig};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE14;

/// Hypercube dimensions for the sweep.
pub fn dimensions(cfg: &ExperimentConfig) -> Vec<u32> {
    if cfg.full_scale {
        vec![4, 5, 6, 7, 8]
    } else {
        vec![4, 5]
    }
}

/// Runs E14 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E14 / hypercube: event-driven pp-a vs first-passage percolation",
        &["dim", "n", "E[T_pp-a]", "E[T_fpp]", "ratio", "KS distance"],
    );
    for dim in dimensions(cfg) {
        let g = generators::hypercube(dim);
        let budget = default_max_steps(&g);
        let ppa: Vec<f64> =
            run_trials_parallel(cfg.trials, mix_seed(cfg, SALT), cfg.threads, |_, rng| {
                run_async(&g, 0, Mode::PushPull, AsyncView::EdgeClocks, rng, budget).time
            });
        let fpp: Vec<f64> =
            run_trials_parallel(cfg.trials, mix_seed(cfg, SALT + 1), cfg.threads, |_, rng| {
                async_pushpull_as_fpp(&g, 0, rng).makespan
            });
        let sa: OnlineStats = ppa.iter().copied().collect();
        let sf: OnlineStats = fpp.iter().copied().collect();
        table.add_row(vec![
            dim.to_string(),
            g.node_count().to_string(),
            fmt_f(sa.mean(), 3),
            fmt_f(sf.mean(), 3),
            fmt_f(sa.mean() / sf.mean(), 3),
            fmt_f(ks_statistic(&ppa, &fpp), 3),
        ]);
    }
    table.add_note("the correspondence is exact: ratio -> 1, KS distance is sampling noise");
    table
}

/// Worst |ratio − 1| across dimensions (test hook).
pub fn worst_ratio_error(table: &Table) -> f64 {
    (0..table.row_count())
        .map(|r| {
            let ratio: f64 = table.cell(r, 4).unwrap().parse().unwrap();
            (ratio - 1.0).abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpp_matches_event_driven_async() {
        let cfg = ExperimentConfig::quick().with_trials(150);
        let table = run(&cfg);
        let err = worst_ratio_error(&table);
        assert!(err < 0.12, "FPP/pp-a mean ratio off by {err}");
    }
}
