//! **E17 — extension: source sensitivity.** The paper's quantities
//! `T(α, G, u)` are per-source; how much does the choice of `u` matter?
//! On vertex-transitive graphs (cycle, hypercube) not at all; on the
//! star, the diamond chain, and preferential-attachment graphs, hub
//! versus periphery placement changes constants (and on the diamond
//! chain, endpoint vs center halves the distance). This experiment
//! measures best/worst source spreads for both models.

use rumor_core::asynchronous::AsyncView;
use rumor_core::runner::{default_max_steps, run_trials_parallel};
use rumor_core::{run_async, run_sync, Mode};
use rumor_graph::{generators, Graph, Node};
use rumor_sim::rng::Xoshiro256PlusPlus;
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{mix_seed, sync_round_budget, ExperimentConfig};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE17;

struct Case {
    name: &'static str,
    graph: Graph,
    /// (label, source) pairs to compare.
    sources: Vec<(&'static str, Node)>,
}

fn cases(n: usize, rng: &mut Xoshiro256PlusPlus) -> Vec<Case> {
    let (k, m) = generators::diamond_parameters(n);
    let pa = generators::preferential_attachment(n, 2, rng);
    // The highest-degree PA node is a hub; the last added is peripheral.
    let hub = pa.nodes().max_by_key(|&v| pa.degree(v)).expect("non-empty");
    vec![
        Case {
            name: "star",
            graph: generators::star(n),
            sources: vec![("center", 0), ("leaf", 1)],
        },
        Case {
            name: "diamonds",
            graph: generators::string_of_diamonds(k, m),
            sources: vec![("mid-hub", (k / 2) as Node), ("end-hub", 0)],
        },
        Case {
            name: "pref-attach-2",
            graph: pa,
            sources: vec![("hub", hub), ("periphery", (n - 1) as Node)],
        },
        Case {
            name: "hypercube",
            graph: generators::hypercube((n as f64).log2() as u32),
            sources: vec![("corner-0", 0), ("corner-1", 1)],
        },
    ]
}

/// Runs E17 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E17 / extension: how much does the source vertex matter?",
        &["graph", "n", "source", "E[T_sync]", "E[T_async]"],
    );
    let n = if cfg.full_scale { 512 } else { 64 };
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x6F7);
    for case in cases(n, &mut graph_rng) {
        let budget_sync = sync_round_budget(&case.graph);
        let budget_async = default_max_steps(&case.graph);
        for (label, source) in &case.sources {
            let g = &case.graph;
            let sync: OnlineStats =
                run_trials_parallel(cfg.trials, mix_seed(cfg, SALT), cfg.threads, |_, rng| {
                    run_sync(g, *source, Mode::PushPull, rng, budget_sync).rounds as f64
                })
                .into_iter()
                .collect();
            let asy: OnlineStats =
                run_trials_parallel(cfg.trials, mix_seed(cfg, SALT + 1), cfg.threads, |_, rng| {
                    run_async(g, *source, Mode::PushPull, AsyncView::GlobalClock, rng, budget_async)
                        .time
                })
                .into_iter()
                .collect();
            table.add_row(vec![
                case.name.to_owned(),
                case.graph.node_count().to_string(),
                (*label).to_owned(),
                fmt_f(sync.mean(), 2),
                fmt_f(asy.mean(), 2),
            ]);
        }
    }
    table.add_note(
        "vertex-transitive rows (hypercube) are source-independent; hub placement helps elsewhere",
    );
    table
}

/// Mean sync times for the two sources of a named case (test hook).
pub fn case_pair(table: &Table, name: &str, col: usize) -> Vec<f64> {
    (0..table.row_count())
        .filter(|&r| table.cell(r, 0) == Some(name))
        .map(|r| table.cell(r, col).unwrap().parse().unwrap())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_is_source_insensitive_and_diamonds_is_not() {
        let cfg = ExperimentConfig::quick().with_trials(60);
        let table = run(&cfg);
        let hc = case_pair(&table, "hypercube", 3);
        assert_eq!(hc.len(), 2);
        assert!((hc[0] - hc[1]).abs() / hc[0] < 0.15, "hypercube sources should agree: {hc:?}");
        let di = case_pair(&table, "diamonds", 3);
        // End hub must be slower than the middle hub (twice the distance).
        assert!(di[1] > 1.2 * di[0], "diamond end-hub {di:?} should clearly exceed mid-hub");
    }
}
