//! **E5 — observation (2) of §1.** On regular graphs, the asynchronous
//! push-only spreading time has the same distribution as **twice** the
//! asynchronous push–pull time.
//!
//! Intuition: on a `d`-regular graph every directed contact `(v, w)`
//! happens at rate `1/d`; push-only can use only the informed→uninformed
//! direction, push–pull uses both, so the transmission clock across every
//! edge runs exactly twice as fast. We verify by comparing the sample of
//! `T_push-a` against an independent sample of `2·T_pp-a`: means and the
//! Kolmogorov–Smirnov distance.

use rumor_core::asynchronous::AsyncView;
use rumor_core::Mode;
use rumor_sim::rng::Xoshiro256PlusPlus;
use rumor_sim::stats::{ks_statistic, OnlineStats};

use crate::experiments::common::{mix_seed, regular_suite, sample_async, ExperimentConfig};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE5;

/// Runs E5 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E5 / regular graphs: async push ~ 2 x async push-pull (distribution)",
        &["graph", "n", "E[T_push-a]", "2*E[T_pp-a]", "mean ratio", "KS distance"],
    );
    let n = if cfg.full_scale { 256 } else { 64 };
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x657);
    for entry in regular_suite(n, &mut graph_rng) {
        let push: Vec<f64> = sample_async(&entry, Mode::Push, AsyncView::GlobalClock, cfg, SALT);
        let pp_doubled: Vec<f64> =
            sample_async(&entry, Mode::PushPull, AsyncView::GlobalClock, cfg, SALT + 1)
                .into_iter()
                .map(|t| 2.0 * t)
                .collect();
        let sp: OnlineStats = push.iter().copied().collect();
        let sd: OnlineStats = pp_doubled.iter().copied().collect();
        let ks = ks_statistic(&push, &pp_doubled);
        table.add_row(vec![
            entry.name.to_owned(),
            entry.graph.node_count().to_string(),
            fmt_f(sp.mean(), 3),
            fmt_f(sd.mean(), 3),
            fmt_f(sp.mean() / sd.mean(), 3),
            fmt_f(ks, 3),
        ]);
    }
    table.add_note("claim: T_push-a and 2*T_pp-a are equal in distribution on regular graphs");
    table.add_note("KS distance shrinks as trials grow; mean ratio should be ~1.0");
    table
}

/// Worst |mean ratio − 1| across rows (test hook).
pub fn worst_mean_ratio_error(table: &Table) -> f64 {
    (0..table.row_count())
        .map(|r| {
            let ratio: f64 = table.cell(r, 4).expect("ratio column").parse().expect("numeric");
            (ratio - 1.0).abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_is_twice_pushpull_on_regular_graphs() {
        let cfg = ExperimentConfig::quick().with_trials(150);
        let table = run(&cfg);
        let err = worst_mean_ratio_error(&table);
        assert!(err < 0.2, "mean ratio deviates from 1 by {err}");
    }
}
