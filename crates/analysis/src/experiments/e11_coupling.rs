//! **E11 — the coupled inequalities of Lemmas 9 and 10.** Running the
//! three-process pull coupling exposes, for every node `v`, the informing
//! round `r_v` in `ppx`, `r'_v` in `ppy`, and time `t_v` in `pp-a`. The
//! lemmas state that with high probability
//!
//! ```text
//! max_v (r'_v − 2·r_v)  = O(log n)      (Lemma 9)
//! max_v (t_v − 4·r'_v)  = O(log n)      (Lemma 10)
//! ```
//!
//! We report the observed maxima normalized by `ln n`, plus the push
//! coupling's `mean(t_v − r_v)` (≤ 0 in expectation, §3).

use rumor_core::coupling::pull::run_pull_coupling;
use rumor_core::coupling::push::run_push_coupling;
use rumor_core::runner::run_trials_parallel;
use rumor_sim::rng::Xoshiro256PlusPlus;
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{mix_seed, standard_suite, ExperimentConfig};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE11;

/// Runs E11 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E11 / Lemmas 9 & 10: coupled excesses, normalized by ln n",
        &["graph", "n", "max L9 excess/ln n", "max L10 excess/ln n", "push: mean(t-r)"],
    );
    let n = if cfg.full_scale { 128 } else { 48 };
    // Coupled runs are heavier than plain runs; quarter the trial count.
    let runs = (cfg.trials / 4).max(10);
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x6B7);
    let mut worst9: f64 = f64::NEG_INFINITY;
    let mut worst10: f64 = f64::NEG_INFINITY;
    for entry in standard_suite(n, &mut graph_rng) {
        let ln_n = (entry.graph.node_count() as f64).ln();
        let excesses = run_trials_parallel(runs, mix_seed(cfg, SALT), cfg.threads, |_, rng| {
            let seed = rng.next_u64();
            let out = run_pull_coupling(&entry.graph, entry.source, seed, 10_000_000);
            assert!(out.completed, "pull coupling must complete");
            (out.lemma9_excess(), out.lemma10_excess())
        });
        let max9 = excesses.iter().map(|e| e.0).fold(f64::NEG_INFINITY, f64::max) / ln_n;
        let max10 = excesses.iter().map(|e| e.1).fold(f64::NEG_INFINITY, f64::max) / ln_n;
        worst9 = worst9.max(max9);
        worst10 = worst10.max(max10);
        let push_means: OnlineStats =
            run_trials_parallel(runs, mix_seed(cfg, SALT + 1), cfg.threads, |_, rng| {
                let seed = rng.next_u64();
                let out = run_push_coupling(&entry.graph, entry.source, seed, 10_000_000);
                assert!(out.completed, "push coupling must complete");
                out.mean_time_minus_round()
            })
            .into_iter()
            .collect();
        table.add_row(vec![
            entry.name.to_owned(),
            entry.graph.node_count().to_string(),
            fmt_f(max9, 3),
            fmt_f(max10, 3),
            fmt_f(push_means.mean(), 3),
        ]);
    }
    table.add_note(&format!(
        "Lemmas 9/10 predict O(1) columns; worst observed L9 = {}, L10 = {}",
        fmt_f(worst9, 3),
        fmt_f(worst10, 3)
    ));
    table.add_note("push column: E[t_v] <= E[r_v] along rumor paths, so means sit at or below 0");
    table
}

/// Largest normalized Lemma 9 excess in the table (test hook).
pub fn worst_l9(table: &Table) -> f64 {
    (0..table.row_count())
        .map(|r| table.cell(r, 2).unwrap().parse::<f64>().unwrap())
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Largest normalized Lemma 10 excess in the table (test hook).
pub fn worst_l10(table: &Table) -> f64 {
    (0..table.row_count())
        .map(|r| table.cell(r, 3).unwrap().parse::<f64>().unwrap())
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupled_excesses_are_logarithmic() {
        let cfg = ExperimentConfig::quick().with_trials(60);
        let table = run(&cfg);
        // "O(log n)" with a generous constant: the excess/ln n columns
        // stay below ~25 across all families.
        assert!(worst_l9(&table) < 25.0, "L9 excess: {}", worst_l9(&table));
        assert!(worst_l10(&table) < 25.0, "L10 excess: {}", worst_l10(&table));
    }
}
