//! **E6 — the Acan et al. separation.** On the string-of-diamonds graph
//! with `k = n^{1/3}` diamonds of width `m = n^{2/3}`, synchronous
//! push–pull needs `Θ(n^{1/3})` rounds while asynchronous push–pull
//! finishes in polylogarithmic time. The paper cites this construction to
//! show its Theorem 2 lower bound is within `Θ(n^{1/6})` of the best
//! possible.
//!
//! The series sweeps sizes, fits `T_sync(n) ≈ a·n^b` (expect `b ≈ 1/3`),
//! and shows the measured sync/async ratio growing polynomially.

use rumor_core::asynchronous::AsyncView;
use rumor_core::Mode;
use rumor_graph::generators;
use rumor_sim::fit::power_law_fit;
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{sample_async, sample_sync, ExperimentConfig, SuiteEntry};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE6;

/// Target sizes for the sweep.
pub fn sizes(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.full_scale {
        vec![256, 1024, 4096, 16384]
    } else {
        vec![128, 512]
    }
}

/// Runs E6 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E6 / string of diamonds: sync Theta(n^{1/3}) vs async polylog",
        &["n", "k", "m", "E[T_sync]", "E[T_async]", "sync/async"],
    );
    let mut ns = Vec::new();
    let mut sync_means = Vec::new();
    for target in sizes(cfg) {
        let (k, m) = generators::diamond_parameters(target);
        let entry =
            SuiteEntry { name: "diamonds", graph: generators::string_of_diamonds(k, m), source: 0 };
        let n_actual = entry.graph.node_count();
        let sync: OnlineStats =
            sample_sync(&entry, Mode::PushPull, cfg, SALT).into_iter().collect();
        let asy: OnlineStats =
            sample_async(&entry, Mode::PushPull, AsyncView::GlobalClock, cfg, SALT + 1)
                .into_iter()
                .collect();
        ns.push(n_actual as f64);
        sync_means.push(sync.mean());
        table.add_row(vec![
            n_actual.to_string(),
            k.to_string(),
            m.to_string(),
            fmt_f(sync.mean(), 1),
            fmt_f(asy.mean(), 2),
            fmt_f(sync.mean() / asy.mean(), 1),
        ]);
    }
    let fit = power_law_fit(&ns, &sync_means);
    table.add_note(&format!(
        "power-law fit: E[T_sync] ~ {}*n^{} (r^2 = {}); theory predicts exponent 1/3",
        fmt_f(fit.a, 2),
        fmt_f(fit.b, 3),
        fmt_f(fit.r2, 4),
    ));
    table.add_note("async stays polylogarithmic, so the sync/async ratio grows polynomially");
    table
}

/// The fitted synchronous growth exponent (recomputed from the table's
/// data columns; test hook).
pub fn sync_exponent(table: &Table) -> f64 {
    let ns: Vec<f64> =
        (0..table.row_count()).map(|r| table.cell(r, 0).unwrap().parse().unwrap()).collect();
    let ts: Vec<f64> =
        (0..table.row_count()).map(|r| table.cell(r, 3).unwrap().parse().unwrap()).collect();
    power_law_fit(&ns, &ts).b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_grows_polynomially_and_async_wins() {
        let cfg = ExperimentConfig::quick().with_trials(40);
        let table = run(&cfg);
        // At quick sizes the exponent estimate is rough; require a clear
        // polynomial signal.
        let b = sync_exponent(&table);
        assert!(b > 0.15, "sync exponent {b} too flat");
        // Async must beat sync at the largest size, and the gap must widen
        // with n (the separation is asymptotic).
        let last = table.row_count() - 1;
        let first_ratio: f64 = table.cell(0, 5).unwrap().parse().unwrap();
        let last_ratio: f64 = table.cell(last, 5).unwrap().parse().unwrap();
        assert!(last_ratio > 1.4, "sync/async ratio {last_ratio} should exceed 1.4");
        assert!(last_ratio > first_ratio, "separation should widen: {first_ratio} -> {last_ratio}");
    }
}
