//! **E15 — ablation: the `√n` block size of §5.** The proof of Theorem 2
//! partitions the asynchronous step sequence into blocks of at most `√n`
//! steps. Why `√n`? The round count decomposes into ~`τ/c` rounds from
//! full blocks of size `c` plus ~`τ·c/n` rounds from left-incompatible
//! closes (a block of size `c` collides with probability ~`c/n` per
//! step); balancing the two terms gives `c = √n`. This ablation sweeps
//! the capacity and shows the round count is minimized near `√n`.

use rumor_core::coupling::blocks::{block_capacity, run_block_coupling_with_capacity};
use rumor_core::runner::run_trials_parallel;
use rumor_graph::generators;
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{mix_seed, ExperimentConfig, SuiteEntry};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE15;

/// Capacity multipliers swept by the ablation.
pub const MULTIPLIERS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Runs E15 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E15 / ablation: block capacity c*sqrt(n) vs rounds used (Sec. 5 design choice)",
        &["graph", "n", "c=0.25", "c=0.5", "c=1 (paper)", "c=2", "c=4"],
    );
    let n = if cfg.full_scale { 256 } else { 64 };
    let runs = (cfg.trials / 4).max(10);
    let entries = vec![
        SuiteEntry {
            name: "hypercube",
            graph: generators::hypercube((n as f64).log2() as u32),
            source: 0,
        },
        SuiteEntry { name: "complete", graph: generators::complete(n), source: 0 },
        SuiteEntry { name: "cycle", graph: generators::cycle(n), source: 0 },
    ];
    for entry in &entries {
        let n_actual = entry.graph.node_count();
        let base = block_capacity(n_actual);
        let mut cells = vec![entry.name.to_owned(), n_actual.to_string()];
        for (i, &mult) in MULTIPLIERS.iter().enumerate() {
            let cap = ((base as f64 * mult).round() as usize).max(1);
            let rounds: OnlineStats =
                run_trials_parallel(runs, mix_seed(cfg, SALT + i as u64), cfg.threads, |_, rng| {
                    let stats = run_block_coupling_with_capacity(
                        &entry.graph,
                        entry.source,
                        rng.next_u64(),
                        500_000_000,
                        cap,
                    );
                    assert!(stats.completed && stats.subset_invariant_held);
                    stats.rounds as f64
                })
                .into_iter()
                .collect();
            cells.push(fmt_f(rounds.mean(), 1));
        }
        table.add_row(cells);
    }
    table.add_note("each cell: mean pp rounds the coupling maps the async run to");
    table.add_note("the paper's c = 1 (capacity sqrt(n)) sits at or near the row minimum");
    table
}

/// Mean rounds per multiplier column for a row (test hook).
pub fn row_rounds(table: &Table, row: usize) -> Vec<f64> {
    (2..2 + MULTIPLIERS.len()).map(|c| table.cell(row, c).unwrap().parse().unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqrt_n_is_near_optimal() {
        let cfg = ExperimentConfig::quick().with_trials(40);
        let table = run(&cfg);
        for row in 0..table.row_count() {
            let rounds = row_rounds(&table, row);
            let at_paper = rounds[2]; // c = 1
            let best = rounds.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                at_paper <= 1.8 * best,
                "row {row}: paper choice {at_paper} vs best {best} ({rounds:?})"
            );
            // Degenerate capacities must be clearly worse than the best.
            assert!(rounds[0] > best, "row {row}: tiny capacity should cost rounds ({rounds:?})");
        }
    }
}
