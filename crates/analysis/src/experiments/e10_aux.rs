//! **E10 — the auxiliary-process sandwich.** Lemma 6 states
//! `T(ppx) ≼ T(pp)` (stochastic domination); Lemmas 9/10 then place `ppy`
//! and `pp-a` within a constant factor plus `O(log n)`.
//!
//! We sample all three synchronous processes and report their means plus
//! the *domination violation*: `max_t (F̂_pp(t) − F̂_ppx(t))`, which would
//! be ≈ 0 under Lemma 6 (up to Monte-Carlo noise); a genuinely faster
//! `pp` would make it large and positive.

use rumor_core::aux::{run_aux, AuxKind};
use rumor_core::runner::run_trials_parallel;
use rumor_core::{run_sync, Mode};
use rumor_sim::rng::Xoshiro256PlusPlus;
use rumor_sim::stats::{Ecdf, OnlineStats};

use crate::experiments::common::{
    mix_seed, standard_suite, sync_round_budget, ExperimentConfig, SuiteEntry,
};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE10;

fn sample_rounds<F>(entry: &SuiteEntry, cfg: &ExperimentConfig, salt: u64, f: F) -> Vec<f64>
where
    F: Fn(&SuiteEntry, &mut Xoshiro256PlusPlus, u64) -> u64 + Sync,
{
    let budget = sync_round_budget(&entry.graph);
    run_trials_parallel(cfg.trials, mix_seed(cfg, salt), cfg.threads, |_, rng| {
        f(entry, rng, budget) as f64
    })
}

/// `max_t (F̂_b(t) − F̂_a(t))`: how much the law of sample `b` sits to the
/// left of (is faster than) sample `a`. Lemma 6 with `a = ppx`, `b = pp`
/// predicts a value ≈ 0.
pub fn domination_violation(a: &[f64], b: &[f64]) -> f64 {
    let fa = Ecdf::new(a);
    let fb = Ecdf::new(b);
    let mut worst = f64::NEG_INFINITY;
    for &t in fa.values().iter().chain(fb.values()) {
        worst = worst.max(fb.eval(t) - fa.eval(t));
    }
    worst
}

/// Runs E10 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E10 / Lemma 6 sandwich: ppx dominated-by pp, with ppy placed above",
        &["graph", "n", "E[ppx]", "E[pp]", "E[ppy]", "violation(ppx<=pp)"],
    );
    let n = if cfg.full_scale { 256 } else { 48 };
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x6A7);
    let mut worst: f64 = f64::NEG_INFINITY;
    for entry in standard_suite(n, &mut graph_rng) {
        let ppx = sample_rounds(&entry, cfg, SALT, |e, rng, budget| {
            run_aux(&e.graph, e.source, AuxKind::Ppx, rng, budget).rounds
        });
        let ppy = sample_rounds(&entry, cfg, SALT + 1, |e, rng, budget| {
            run_aux(&e.graph, e.source, AuxKind::Ppy, rng, budget).rounds
        });
        let pp = sample_rounds(&entry, cfg, SALT + 2, |e, rng, budget| {
            run_sync(&e.graph, e.source, Mode::PushPull, rng, budget).rounds
        });
        let violation = domination_violation(&ppx, &pp);
        worst = worst.max(violation);
        let m = |s: &[f64]| s.iter().copied().collect::<OnlineStats>().mean();
        table.add_row(vec![
            entry.name.to_owned(),
            entry.graph.node_count().to_string(),
            fmt_f(m(&ppx), 2),
            fmt_f(m(&pp), 2),
            fmt_f(m(&ppy), 2),
            fmt_f(violation, 3),
        ]);
    }
    table.add_note(&format!(
        "Lemma 6: T(ppx) is stochastically dominated by T(pp); worst violation = {} (Monte-Carlo noise only)",
        fmt_f(worst, 3)
    ));
    table.add_note("Lemma 9 places E[ppy] <= 2*E[ppx] + O(log n)");
    table
}

/// Largest domination violation in the table (test hook).
pub fn worst_violation(table: &Table) -> f64 {
    (0..table.row_count())
        .map(|r| table.cell(r, 5).unwrap().parse::<f64>().unwrap())
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppx_is_dominated_by_pp() {
        let cfg = ExperimentConfig::quick().with_trials(120);
        let table = run(&cfg);
        // Two-sample DKW-ish noise at 120 trials: |F̂ − F| ≲ 0.12 each whp.
        let worst = worst_violation(&table);
        assert!(worst < 0.25, "Lemma 6 violated beyond noise: {worst}");
    }

    #[test]
    fn violation_helper_detects_direction() {
        let slow = [5.0, 6.0, 7.0, 8.0];
        let fast = [1.0, 2.0, 3.0, 4.0];
        // `fast` lies fully left of `slow`: violation(slow dominated-by
        // nothing) — here b = fast is faster than a = slow, so positive.
        assert!(domination_violation(&slow, &fast) > 0.9);
        // And a sample is never faster than itself.
        assert!(domination_violation(&fast, &fast) <= 0.0 + 1e-12);
    }
}
