//! **E9 — the three asynchronous formulations (§2).** Per-node rate-1
//! clocks, one global rate-`n` clock, and per-directed-edge clocks with
//! rate `1/deg(v)` describe the *same* process (superposition and
//! thinning of Poisson processes). We verify by sampling the spreading
//! time under each view and comparing all pairs: means and
//! Kolmogorov–Smirnov distances.

use rumor_core::asynchronous::AsyncView;
use rumor_core::Mode;
use rumor_graph::generators;
use rumor_sim::rng::Xoshiro256PlusPlus;
use rumor_sim::stats::{ks_statistic, OnlineStats};

use crate::experiments::common::{mix_seed, sample_async, ExperimentConfig, SuiteEntry};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE9;

/// Runs E9 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E9 / equivalence of async formulations (push-pull spreading time)",
        &["graph", "n", "mean(global)", "mean(node)", "mean(edge)", "max KS"],
    );
    let n = if cfg.full_scale { 128 } else { 48 };
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x697);
    let entries = vec![
        SuiteEntry { name: "star", graph: generators::star(n), source: 1 },
        SuiteEntry { name: "cycle", graph: generators::cycle(n), source: 0 },
        SuiteEntry {
            name: "hypercube",
            graph: generators::hypercube((n as f64).log2().round() as u32),
            source: 0,
        },
        SuiteEntry {
            name: "gnp",
            graph: generators::gnp_connected(
                n,
                2.0 * (n as f64).ln() / n as f64,
                &mut graph_rng,
                200,
            ),
            source: 0,
        },
    ];
    for entry in &entries {
        let samples: Vec<Vec<f64>> = AsyncView::ALL
            .iter()
            .enumerate()
            .map(|(i, &view)| sample_async(entry, Mode::PushPull, view, cfg, SALT + i as u64))
            .collect();
        let means: Vec<f64> =
            samples.iter().map(|s| s.iter().copied().collect::<OnlineStats>().mean()).collect();
        let mut max_ks: f64 = 0.0;
        for i in 0..samples.len() {
            for j in (i + 1)..samples.len() {
                max_ks = max_ks.max(ks_statistic(&samples[i], &samples[j]));
            }
        }
        table.add_row(vec![
            entry.name.to_owned(),
            entry.graph.node_count().to_string(),
            fmt_f(means[0], 3),
            fmt_f(means[1], 3),
            fmt_f(means[2], 3),
            fmt_f(max_ks, 3),
        ]);
    }
    table.add_note("all three views sample one process: KS distances are pure Monte-Carlo noise");
    table
}

/// Largest pairwise KS distance in the table (test hook).
pub fn worst_ks(table: &Table) -> f64 {
    (0..table.row_count())
        .map(|r| table.cell(r, 5).unwrap().parse::<f64>().unwrap())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_are_statistically_indistinguishable() {
        let cfg = ExperimentConfig::quick().with_trials(150);
        let table = run(&cfg);
        // Critical KS value at alpha=0.001 for 150-vs-150 samples ~ 0.225.
        let worst = worst_ks(&table);
        assert!(worst < 0.23, "views differ: max KS {worst}");
        // Means should agree within 15 %.
        for r in 0..table.row_count() {
            let m: Vec<f64> =
                (2..=4).map(|c| table.cell(r, c).unwrap().parse::<f64>().unwrap()).collect();
            let max = m.iter().cloned().fold(f64::MIN, f64::max);
            let min = m.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max / min < 1.15, "means differ: {m:?}");
        }
    }
}
