//! One module per experiment; see the crate docs for the claim map.

pub mod common;
pub mod e10_aux;
pub mod e11_coupling;
pub mod e12_blocks;
pub mod e13_steps;
pub mod e14_fpp;
pub mod e15_capacity;
pub mod e16_quasirandom;
pub mod e17_sources;
pub mod e18_loss;
pub mod e19_dynamic_churn;
pub mod e1_upper;
pub mod e20_rewire_gap;
pub mod e21_engines;
pub mod e22_models;
pub mod e23_coupled_gap;
pub mod e2_lower;
pub mod e3_star;
pub mod e4_regular;
pub mod e5_push_double;
pub mod e6_diamonds;
pub mod e7_classical;
pub mod e8_social;
pub mod e9_views;
