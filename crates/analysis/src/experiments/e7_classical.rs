//! **E7 — classical graphs (§1).** On the hypercube, random graphs,
//! random regular graphs, and the complete graph, synchronous and
//! asynchronous push–pull have the same spreading time up to constant
//! factors ([2, 14, 21, 23] in the paper).
//!
//! For each family the async/sync ratio of mean spreading times is
//! reported across doubling sizes; a constant-factor relationship shows
//! as a flat column.

use rumor_core::asynchronous::AsyncView;
use rumor_core::Mode;
use rumor_graph::generators;
use rumor_sim::rng::Xoshiro256PlusPlus;
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{
    mix_seed, sample_async, sample_sync, ExperimentConfig, SuiteEntry,
};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE7;

/// Runs E7 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E7 / classical graphs: async/sync ratio is Theta(1)",
        &["graph", "n", "E[T_sync]", "E[T_async]", "async/sync"],
    );
    let sizes: Vec<usize> = if cfg.full_scale { vec![64, 256, 1024] } else { vec![32, 128] };
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x677);
    for &n in &sizes {
        let dim = (n as f64).log2().round() as u32;
        let p_conn = 2.0 * (n as f64).ln() / n as f64;
        let entries = vec![
            SuiteEntry { name: "hypercube", graph: generators::hypercube(dim), source: 0 },
            SuiteEntry { name: "complete", graph: generators::complete(n), source: 0 },
            SuiteEntry {
                name: "gnp",
                graph: generators::gnp_connected(n, p_conn, &mut graph_rng, 200),
                source: 0,
            },
            SuiteEntry {
                name: "random-regular-3",
                graph: generators::random_regular_connected(n, 3, &mut graph_rng, 500),
                source: 0,
            },
        ];
        for entry in entries {
            let sync: OnlineStats =
                sample_sync(&entry, Mode::PushPull, cfg, SALT).into_iter().collect();
            let asy: OnlineStats =
                sample_async(&entry, Mode::PushPull, AsyncView::GlobalClock, cfg, SALT + 1)
                    .into_iter()
                    .collect();
            table.add_row(vec![
                entry.name.to_owned(),
                entry.graph.node_count().to_string(),
                fmt_f(sync.mean(), 2),
                fmt_f(asy.mean(), 2),
                fmt_f(asy.mean() / sync.mean(), 3),
            ]);
        }
    }
    table.add_note("per family, the ratio column should be flat in n (constant factor)");
    table
}

/// For each family, the spread (max/min) of its ratio column across sizes
/// (test hook). A constant-factor law keeps these spreads small.
pub fn ratio_spreads(table: &Table) -> Vec<(String, f64)> {
    use std::collections::BTreeMap;
    let mut per_family: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for r in 0..table.row_count() {
        let name = table.cell(r, 0).unwrap().to_owned();
        let ratio: f64 = table.cell(r, 4).unwrap().parse().unwrap();
        per_family.entry(name).or_default().push(ratio);
    }
    per_family
        .into_iter()
        .map(|(name, rs)| {
            let max = rs.iter().cloned().fold(f64::MIN, f64::max);
            let min = rs.iter().cloned().fold(f64::MAX, f64::min);
            (name, max / min)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_stay_in_a_constant_band() {
        let cfg = ExperimentConfig::quick().with_trials(60);
        let table = run(&cfg);
        for (family, spread) in ratio_spreads(&table) {
            assert!(spread < 2.5, "family {family} ratio spread {spread} not constant-like");
        }
    }
}
