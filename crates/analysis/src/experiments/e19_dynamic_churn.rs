//! **E19 — dynamic networks: spreading time vs. edge churn.** On a
//! sparse connected `G(n, p)`, the asynchronous push–pull protocol runs
//! under edge-Markov churn in the failure/recovery regime: each live
//! edge *fails* at rate ν and failed edges *recover* at fixed rate 1,
//! so the stationary live-edge fraction is `1/(1 + ν)`. Two claims are
//! checked:
//!
//! * **convergence to the static baseline** — at ν = 0 the dynamic
//!   engine replays the static asynchronous process *seed-for-seed*
//!   (the E7 regime), so the first row's ratio is exactly 1;
//! * **monotone slowdown** — raising ν strictly thins the live edge
//!   set (recovery is held fixed), so `E[T]` grows monotonically in ν
//!   on sparse graphs (Pourmiri–Mans, dynamic-gossip regime).
//!
//! Symmetric churn (off- and on-rates both ν) is deliberately *not*
//! used here: scaling both rates together is non-monotone — slow
//! symmetric churn freezes bottlenecks in place while fast symmetric
//! churn resamples the graph every few ticks, which can even beat the
//! static baseline. The failure/recovery parameterization isolates the
//! density effect the sweep is after.

use rumor_core::dynamic::{DynamicModel, EdgeMarkov};
use rumor_core::runner;
use rumor_core::spec::{Protocol, SimSpec, Topology};
use rumor_graph::generators;
use rumor_sim::rng::Xoshiro256PlusPlus;

use crate::experiments::common::{mix_seed, ratio_cell, CensoredSamples, ExperimentConfig};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE19;

/// Churn rates swept, in units of the per-node protocol clock rate.
pub const CHURN_RATES: [f64; 5] = [0.0, 0.5, 1.0, 2.0, 4.0];

/// Runs E19 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E19 / dynamic churn: E[T] grows with edge-Markov churn rate; nu = 0 is the static E7 baseline",
        &["n", "churn nu", "E[T_dynamic]", "E[T_static]", "dynamic/static"],
    );
    let sizes: Vec<usize> = if cfg.full_scale { vec![64, 256] } else { vec![48] };
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x19D);
    let mut censored_total = 0usize;
    for &n in &sizes {
        let p = 2.0 * (n as f64).ln() / n as f64;
        let g = generators::gnp_connected(n, p, &mut graph_rng, 200);
        let max_steps = runner::default_max_steps(&g).saturating_mul(8);
        // One spec per cell: only the topology axis varies.
        let cell_spec = |model: DynamicModel| {
            SimSpec::on_graph(&g)
                .protocol(Protocol::push_pull_async())
                .topology(Topology::Model(model))
                .trials(cfg.trials)
                .seed(mix_seed(cfg, SALT))
                .threads(cfg.threads)
                .max_steps(max_steps)
        };
        let static_samples = CensoredSamples::from_report(
            &cell_spec(DynamicModel::Static).build().expect("valid E19 spec").run(),
        );
        censored_total += static_samples.censored;
        let static_mean = static_samples.mean_completed();
        for nu in CHURN_RATES {
            let model = DynamicModel::EdgeMarkov(EdgeMarkov { off_rate: nu, on_rate: 1.0 });
            // Same master seed as the baseline: at nu = 0 the trials are
            // bit-identical to the static ones, so the ratio is exactly 1.
            let samples = CensoredSamples::from_report(
                &cell_spec(model).build().expect("valid E19 spec").run(),
            );
            censored_total += samples.censored;
            table.add_row(vec![
                n.to_string(),
                fmt_f(nu, 2),
                samples.mean_cell(3),
                static_samples.mean_cell(3),
                ratio_cell(samples.mean_completed(), static_mean, 3),
            ]);
        }
    }
    table.add_note(
        "edges fail at rate nu and recover at rate 1: stationary live fraction 1/(1 + nu)",
    );
    table.add_note(&format!(
        "E[T] averages completed trials only; budget-censored trials across all cells: {censored_total}"
    ));
    table.add_note(
        "nu = 0 ratio is exactly 1.000: the dynamic engine replays the static run seed-for-seed",
    );
    table.add_note(
        "the ratio column should increase monotonically in nu (churn thins the live edge set)",
    );
    table
}

/// Per size, the dynamic/static ratio column in churn-rate order (test
/// hook for the monotonicity claim).
pub fn ratio_columns(table: &Table) -> Vec<Vec<f64>> {
    let k = CHURN_RATES.len();
    (0..table.row_count())
        .step_by(k)
        .map(|start| {
            (start..start + k).map(|r| table.cell(r, 4).unwrap().parse().unwrap()).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_churn_matches_static_and_churn_slows_spreading() {
        let cfg = ExperimentConfig::quick().with_trials(40);
        let table = run(&cfg);
        for column in ratio_columns(&table) {
            assert_eq!(column.len(), CHURN_RATES.len());
            assert!(
                (column[0] - 1.0).abs() < 1e-9,
                "nu = 0 must replay the static baseline exactly, got ratio {}",
                column[0]
            );
            let last = *column.last().unwrap();
            assert!(last > 1.05, "heaviest churn should slow spreading, got ratio {last}");
        }
    }
}
