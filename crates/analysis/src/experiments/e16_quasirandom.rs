//! **E16 — extension: quasirandom rumor spreading.** The paper cites the
//! quasirandom protocol (Doerr et al., \[11\]) as part of the experimental
//! literature on rumor spreading. Each node cycles deterministically
//! through its neighbor list from a random starting point — `n` random
//! offsets replace `n` random choices *per round* — yet spreading times
//! match the fully random protocol up to small constants. This
//! experiment measures that ratio across the suite.

use rumor_core::quasirandom::run_quasirandom_sync;
use rumor_core::runner::run_trials_parallel;
use rumor_core::{run_sync, Mode};
use rumor_sim::rng::Xoshiro256PlusPlus;
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{mix_seed, standard_suite, sync_round_budget, ExperimentConfig};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE16;

/// Runs E16 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E16 / extension: quasirandom vs fully random push-pull (sync rounds)",
        &["graph", "n", "E[random]", "E[quasirandom]", "quasi/random"],
    );
    let n = if cfg.full_scale { 256 } else { 64 };
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x6E7);
    for entry in standard_suite(n, &mut graph_rng) {
        let budget = sync_round_budget(&entry.graph);
        let random: OnlineStats =
            run_trials_parallel(cfg.trials, mix_seed(cfg, SALT), cfg.threads, |_, rng| {
                run_sync(&entry.graph, entry.source, Mode::PushPull, rng, budget).rounds as f64
            })
            .into_iter()
            .collect();
        let quasi: OnlineStats =
            run_trials_parallel(cfg.trials, mix_seed(cfg, SALT + 1), cfg.threads, |_, rng| {
                run_quasirandom_sync(&entry.graph, entry.source, Mode::PushPull, rng, budget).rounds
                    as f64
            })
            .into_iter()
            .collect();
        table.add_row(vec![
            entry.name.to_owned(),
            entry.graph.node_count().to_string(),
            fmt_f(random.mean(), 2),
            fmt_f(quasi.mean(), 2),
            fmt_f(quasi.mean() / random.mean(), 3),
        ]);
    }
    table.add_note("known result: quasirandom matches random up to constants, often winning");
    table
}

/// The ratio column (test hook).
pub fn ratios(table: &Table) -> Vec<f64> {
    (0..table.row_count()).map(|r| table.cell(r, 4).unwrap().parse().unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quasirandom_within_constants_of_random() {
        let cfg = ExperimentConfig::quick().with_trials(60);
        let table = run(&cfg);
        for (i, ratio) in ratios(&table).iter().enumerate() {
            assert!(
                (0.3..2.0).contains(ratio),
                "row {i}: quasirandom/random ratio {ratio} out of the constant band"
            );
        }
    }
}
