//! Shared experiment infrastructure: configuration, the graph suite, and
//! sampling helpers.

use rumor_core::asynchronous::AsyncView;
use rumor_core::runner;
use rumor_core::spec::{Protocol, RunReport, SimSpec};
use rumor_core::Mode;
use rumor_graph::{generators, Graph, Node};
use rumor_sim::rng::Xoshiro256PlusPlus;

/// Controls how much work an experiment does.
///
/// `quick()` keeps every experiment under a few seconds for tests;
/// `full()` uses the trial counts recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Monte-Carlo trials per configuration.
    pub trials: usize,
    /// Master seed; every trial derives its own seed from it.
    pub master_seed: u64,
    /// Worker threads for parallel trial running.
    pub threads: usize,
    /// Scale factor applied to the graph sizes of each experiment
    /// (1 = the sizes recorded in EXPERIMENTS.md; quick configs shrink).
    pub full_scale: bool,
}

impl ExperimentConfig {
    /// Full-scale configuration used to produce EXPERIMENTS.md.
    pub fn full() -> Self {
        Self { trials: 400, master_seed: 0xC0FFEE, threads: default_threads(), full_scale: true }
    }

    /// Reduced configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Self { trials: 60, master_seed: 0xC0FFEE, threads: default_threads(), full_scale: false }
    }

    /// Replaces the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Replaces the trial count (builder style).
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Number of worker threads: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Censoring-aware trial aggregation (PR 3 satellite).
///
/// A budget-exhausted (`completed == false`) trial reports the time of
/// its *last step*, which is a **lower bound** on the true spreading
/// time — averaging it as if complete silently biases `E[T]` downward,
/// worst exactly where the dynamics are most hostile (heavy churn,
/// adversarial cuts). `CensoredSamples` separates the two populations:
/// statistics come from completed trials only, and the censored count
/// is carried alongside so tables can disclose it.
#[derive(Debug, Clone, PartialEq)]
pub struct CensoredSamples {
    /// Spreading times of the trials that informed every node.
    pub completed: Vec<f64>,
    /// Number of trials that exhausted their budget first.
    pub censored: usize,
}

impl CensoredSamples {
    /// Splits `(time, completed)` trial outcomes (the shape of
    /// [`RunReport::outcome_pairs`]) into completed samples and a
    /// censored count.
    pub fn from_outcomes(outcomes: &[(f64, bool)]) -> Self {
        let completed =
            outcomes.iter().filter(|&&(_, done)| done).map(|&(t, _)| t).collect::<Vec<_>>();
        let censored = outcomes.len() - completed.len();
        Self { completed, censored }
    }

    /// Censoring-aware view of a [`SimSpec`] run's report.
    pub fn from_report(report: &RunReport) -> Self {
        Self::from_outcomes(&report.outcome_pairs())
    }

    /// Total trials observed.
    pub fn trials(&self) -> usize {
        self.completed.len() + self.censored
    }

    /// Mean spreading time over **completed** trials, or `None` when
    /// every trial was censored (there is no unbiased estimate to
    /// report).
    pub fn mean_completed(&self) -> Option<f64> {
        if self.completed.is_empty() {
            return None;
        }
        Some(self.completed.iter().copied().collect::<rumor_sim::stats::OnlineStats>().mean())
    }

    /// The mean formatted for a table cell: the completed-trials mean,
    /// or `"-"` when all trials censored.
    pub fn mean_cell(&self, decimals: usize) -> String {
        match self.mean_completed() {
            Some(m) => crate::table::fmt_f(m, decimals),
            None => "-".to_owned(),
        }
    }
}

/// A ratio cell between two (possibly missing) censoring-aware means:
/// `"-"` when either side has no completed trials, following the same
/// disclosed-censoring convention as [`CensoredSamples::mean_cell`]
/// (never a literal `NaN` in the table).
pub fn ratio_cell(numerator: Option<f64>, denominator: Option<f64>, decimals: usize) -> String {
    match (numerator, denominator) {
        (Some(n), Some(d)) => crate::table::fmt_f(n / d, decimals),
        _ => "-".to_owned(),
    }
}

/// A named graph instance with a designated rumor source.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Family name (stable across sizes, used as a table key).
    pub name: &'static str,
    /// The instance.
    pub graph: Graph,
    /// Source vertex `u` for the spreading-time measurements.
    pub source: Node,
}

/// The standard graph suite at target size `n`: every family the paper
/// names, instantiated as close to `n` nodes as the family permits.
///
/// Random families are drawn from `rng` (one instance per call); the
/// spreading-time randomness is separate, so experiments measure
/// `T(α, G, u)` on a fixed `G` exactly as the paper defines it.
///
/// Sources are chosen adversarially where the paper does: the star
/// spreads from a *leaf* (the slow case for asynchrony), the diamond
/// chain from the first hub, the double star from a leaf of the first
/// center.
pub fn standard_suite(n: usize, rng: &mut Xoshiro256PlusPlus) -> Vec<SuiteEntry> {
    assert!(n >= 16, "suite sizes start at 16");
    let dim = (n as f64).log2().round().max(2.0) as u32;
    let (k, m) = generators::diamond_parameters(n);
    let p_conn = 2.0 * (n as f64).ln() / n as f64;
    vec![
        SuiteEntry { name: "star", graph: generators::star(n), source: 1 },
        SuiteEntry { name: "path", graph: generators::path(n), source: 0 },
        SuiteEntry { name: "cycle", graph: generators::cycle(n), source: 0 },
        SuiteEntry { name: "hypercube", graph: generators::hypercube(dim), source: 0 },
        SuiteEntry { name: "complete", graph: generators::complete(n), source: 0 },
        SuiteEntry {
            name: "gnp",
            graph: generators::gnp_connected(n, p_conn, rng, 200),
            source: 0,
        },
        SuiteEntry {
            name: "random-regular-6",
            graph: generators::random_regular_connected(n - n % 2, 6, rng, 500),
            source: 0,
        },
        SuiteEntry {
            name: "chung-lu-2.5",
            graph: generators::chung_lu_giant(n, 2.5, 8.0, 0.7, rng),
            source: 0,
        },
        SuiteEntry {
            name: "pref-attach-2",
            graph: generators::preferential_attachment(n, 2, rng),
            source: (n - 1) as Node,
        },
        SuiteEntry {
            name: "double-star",
            graph: generators::double_star(n / 2 - 1, n - n / 2 - 1),
            source: 2,
        },
        SuiteEntry { name: "diamonds", graph: generators::string_of_diamonds(k, m), source: 0 },
    ]
}

/// The regular-graph suite for Corollary 3 and the push-doubling claim.
pub fn regular_suite(n: usize, rng: &mut Xoshiro256PlusPlus) -> Vec<SuiteEntry> {
    assert!(n >= 16, "suite sizes start at 16");
    let dim = (n as f64).log2().round().max(2.0) as u32;
    let side = (n as f64).sqrt().round().max(3.0) as usize;
    vec![
        SuiteEntry { name: "cycle", graph: generators::cycle(n), source: 0 },
        SuiteEntry { name: "torus", graph: generators::torus(side, side), source: 0 },
        SuiteEntry { name: "hypercube", graph: generators::hypercube(dim), source: 0 },
        SuiteEntry {
            name: "random-regular-3",
            graph: generators::random_regular_connected(n - n % 2, 3, rng, 500),
            source: 0,
        },
        SuiteEntry {
            name: "random-regular-8",
            graph: generators::random_regular_connected(n - n % 2, 8, rng, 500),
            source: 0,
        },
        SuiteEntry { name: "complete", graph: generators::complete(n), source: 0 },
    ]
}

/// Graph sizes for suite-sweep experiments under the given config.
pub fn sweep_sizes(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.full_scale {
        vec![64, 256, 1024]
    } else {
        vec![32, 64]
    }
}

/// Derives an experiment-local master seed so different experiments (and
/// different sampling passes within one experiment) read independent
/// randomness from one user-facing seed.
pub fn mix_seed(cfg: &ExperimentConfig, salt: u64) -> u64 {
    cfg.master_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(13)
        ^ salt.wrapping_mul(0xD134_2543_DE82_EF95)
}

/// A generous synchronous round budget for the graphs in this workspace.
pub fn sync_round_budget(g: &Graph) -> u64 {
    1_000 * g.node_count() as u64 + 10_000
}

/// A [`SimSpec`] pre-filled with an experiment's trial plan (trials,
/// mixed seed, threads) for a suite entry — the one builder every
/// experiment driver composes its runs from.
pub fn suite_spec(entry: &SuiteEntry, cfg: &ExperimentConfig, salt: u64) -> SimSpec {
    SimSpec::on_graph(&entry.graph)
        .source(entry.source)
        .trials(cfg.trials)
        .seed(mix_seed(cfg, salt))
        .threads(cfg.threads)
}

/// Samples `cfg.trials` synchronous spreading times on a suite entry.
pub fn sample_sync(entry: &SuiteEntry, mode: Mode, cfg: &ExperimentConfig, salt: u64) -> Vec<f64> {
    suite_spec(entry, cfg, salt)
        .protocol(Protocol::Sync { mode })
        .max_rounds(sync_round_budget(&entry.graph))
        .build()
        .expect("suite specs are valid")
        .run()
        .values()
}

/// Samples `cfg.trials` asynchronous spreading times on a suite entry.
pub fn sample_async(
    entry: &SuiteEntry,
    mode: Mode,
    view: AsyncView,
    cfg: &ExperimentConfig,
    salt: u64,
) -> Vec<f64> {
    suite_spec(entry, cfg, salt)
        .protocol(Protocol::Async { mode, view })
        .max_steps(runner::default_max_steps(&entry.graph))
        .build()
        .expect("suite specs are valid")
        .run()
        .values()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_graph::props;

    /// The PR 3 censoring regression: with a tiny budget every trial is
    /// censored and the aggregation must say so instead of averaging
    /// the truncated times.
    #[test]
    fn censored_trials_are_counted_not_averaged() {
        let g = generators::path(64);
        let report = SimSpec::on_graph(&g)
            .protocol(Protocol::push_pull_async())
            .trials(10)
            .seed(7)
            .max_steps(5) // 5 steps cannot inform a 64-node path
            .build()
            .unwrap()
            .run();
        let samples = CensoredSamples::from_report(&report);
        assert_eq!(samples.censored, 10);
        assert!(samples.completed.is_empty());
        assert_eq!(samples.mean_completed(), None, "no unbiased estimate exists");
        assert_eq!(samples.mean_cell(3), "-");
        assert_eq!(samples.trials(), 10);

        // Mixed population: only the completed times enter the mean.
        let mixed = CensoredSamples::from_outcomes(&[(2.0, true), (1.0, false), (4.0, true)]);
        assert_eq!(mixed.censored, 1);
        assert_eq!(mixed.mean_completed(), Some(3.0));
        assert_eq!(mixed.mean_cell(1), "3.0");

        // Ratio cells inherit the "-" convention instead of printing NaN.
        assert_eq!(ratio_cell(Some(6.0), Some(3.0), 1), "2.0");
        assert_eq!(ratio_cell(None, Some(3.0), 1), "-");
        assert_eq!(ratio_cell(Some(6.0), None, 1), "-");
    }

    #[test]
    fn configs_differ_in_scale() {
        let q = ExperimentConfig::quick();
        let f = ExperimentConfig::full();
        assert!(q.trials < f.trials);
        assert!(!q.full_scale && f.full_scale);
        assert_eq!(q.with_trials(5).trials, 5);
        assert_eq!(q.with_seed(9).master_seed, 9);
    }

    #[test]
    fn standard_suite_is_connected_and_sized() {
        let mut rng = Xoshiro256PlusPlus::seed_from(1);
        let suite = standard_suite(64, &mut rng);
        assert!(suite.len() >= 10);
        for entry in &suite {
            assert!(props::is_connected(&entry.graph), "{} disconnected", entry.name);
            assert!(
                (entry.source as usize) < entry.graph.node_count(),
                "{} source out of range",
                entry.name
            );
            let n = entry.graph.node_count();
            assert!((32..=128).contains(&n), "{} size {n} too far from target 64", entry.name);
        }
    }

    #[test]
    fn regular_suite_is_regular() {
        let mut rng = Xoshiro256PlusPlus::seed_from(2);
        for entry in regular_suite(64, &mut rng) {
            assert!(entry.graph.regular_degree().is_some(), "{} is not regular", entry.name);
            assert!(props::is_connected(&entry.graph), "{} disconnected", entry.name);
        }
    }

    #[test]
    fn sweep_sizes_scale_with_config() {
        assert!(
            sweep_sizes(&ExperimentConfig::quick()).len()
                < sweep_sizes(&ExperimentConfig::full()).len()
                || sweep_sizes(&ExperimentConfig::quick()).iter().max()
                    < sweep_sizes(&ExperimentConfig::full()).iter().max()
        );
    }
}
