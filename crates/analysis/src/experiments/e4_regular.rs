//! **E4 — Corollary 3.** On regular graphs, synchronous push alone is
//! `Θ(synchronous push–pull)`: `T_p,1/n = Θ(T_pp,1/n)`.
//!
//! For each regular family and size, estimate both high-probability times
//! and report their ratio, which must stay in a constant band as `n`
//! grows. (On *non*-regular graphs the ratio explodes — the double-star
//! row demonstrates the contrast.)

use rumor_core::runner::high_probability_time;
use rumor_core::Mode;
use rumor_graph::generators;
use rumor_sim::rng::Xoshiro256PlusPlus;

use crate::experiments::common::{
    mix_seed, regular_suite, sample_sync, sweep_sizes, ExperimentConfig, SuiteEntry,
};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE4;

/// Runs E4 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E4 / Corollary 3: sync push vs sync push-pull on regular graphs",
        &["graph", "n", "T_push_hp", "T_pushpull_hp", "ratio"],
    );
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x647);
    let mut worst_regular: f64 = 0.0;
    for n in sweep_sizes(cfg) {
        for entry in regular_suite(n, &mut graph_rng) {
            let n_actual = entry.graph.node_count();
            let push = sample_sync(&entry, Mode::Push, cfg, SALT);
            let pp = sample_sync(&entry, Mode::PushPull, cfg, SALT + 1);
            let tp = high_probability_time(&push, n_actual);
            let tpp = high_probability_time(&pp, n_actual);
            let ratio = tp / tpp.max(1.0);
            worst_regular = worst_regular.max(ratio);
            table.add_row(vec![
                entry.name.to_owned(),
                n_actual.to_string(),
                fmt_f(tp, 1),
                fmt_f(tpp, 1),
                fmt_f(ratio, 3),
            ]);
        }
    }
    // Contrast row: a non-regular family where push is Θ(k log k) but
    // push-pull is O(1) — Corollary 3 genuinely needs regularity.
    let contrast_n = *sweep_sizes(cfg).last().expect("non-empty sizes");
    let entry = SuiteEntry {
        name: "double-star (NOT regular)",
        graph: generators::double_star(contrast_n / 2 - 1, contrast_n - contrast_n / 2 - 1),
        source: 2,
    };
    let push = sample_sync(&entry, Mode::Push, cfg, SALT + 2);
    let pp = sample_sync(&entry, Mode::PushPull, cfg, SALT + 3);
    let tp = high_probability_time(&push, contrast_n);
    let tpp = high_probability_time(&pp, contrast_n);
    table.add_row(vec![
        entry.name.to_owned(),
        contrast_n.to_string(),
        fmt_f(tp, 1),
        fmt_f(tpp, 1),
        fmt_f(tp / tpp.max(1.0), 3),
    ]);
    table.add_note(&format!(
        "Corollary 3 predicts a constant ratio on regular graphs; worst regular ratio = {}",
        fmt_f(worst_regular, 3)
    ));
    table.add_note("the final (non-regular) row shows the ratio Corollary 3 rules out");
    table
}

/// Max ratio among regular rows (all but the last row; test hook).
pub fn worst_regular_ratio(table: &Table) -> f64 {
    (0..table.row_count().saturating_sub(1))
        .map(|r| table.cell(r, 4).expect("ratio column").parse::<f64>().expect("numeric"))
        .fold(0.0, f64::max)
}

/// Ratio of the contrast (non-regular) row (test hook).
pub fn contrast_ratio(table: &Table) -> f64 {
    let r = table.row_count() - 1;
    table.cell(r, 4).expect("ratio column").parse().expect("numeric")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_ratios_are_constant_and_contrast_is_not() {
        let cfg = ExperimentConfig::quick().with_trials(40);
        let table = run(&cfg);
        let worst = worst_regular_ratio(&table);
        assert!(worst < 6.0, "regular push/push-pull ratio {worst} too large");
        assert!(worst >= 1.0 - 0.35, "push cannot beat push-pull by much: {worst}");
        // The double star should show a dramatically larger ratio.
        assert!(
            contrast_ratio(&table) > worst,
            "contrast {} should exceed regular worst {}",
            contrast_ratio(&table),
            worst
        );
    }
}
