//! **E18 — extension: robustness to message loss.** Every contact
//! independently fails with probability `p`. Since the protocols are
//! memoryless, a loss rate `p` thins the transmission processes by
//! `1 − p`, so on graphs without bottlenecks spreading times should grow
//! roughly like `1/(1 − p)` — gossip degrades *gracefully*, one of its
//! classic selling points (Demers et al. 1987). This experiment sweeps
//! `p` and fits the scaling.

use rumor_core::runner::{default_max_steps, run_trials_parallel};
use rumor_core::spread::{run_async_config, run_sync_config, SpreadConfig};
use rumor_graph::generators;
use rumor_sim::rng::Xoshiro256PlusPlus;
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{mix_seed, sync_round_budget, ExperimentConfig, SuiteEntry};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE18;

/// Loss rates swept.
pub const LOSS_RATES: [f64; 4] = [0.0, 0.25, 0.5, 0.75];

/// Runs E18 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E18 / extension: spreading time under per-contact loss p",
        &["graph", "n", "model", "p=0", "p=0.25", "p=0.5", "p=0.75", "T(0.5)/T(0)"],
    );
    let n = if cfg.full_scale { 256 } else { 64 };
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x707);
    let entries = vec![
        SuiteEntry {
            name: "hypercube",
            graph: generators::hypercube((n as f64).log2() as u32),
            source: 0,
        },
        SuiteEntry {
            name: "gnp",
            graph: generators::gnp_connected(
                n,
                2.0 * (n as f64).ln() / n as f64,
                &mut graph_rng,
                200,
            ),
            source: 0,
        },
        SuiteEntry { name: "complete", graph: generators::complete(n), source: 0 },
    ];
    for entry in &entries {
        let n_str = entry.graph.node_count().to_string();
        for model in ["sync", "async"] {
            let mut cells = vec![entry.name.to_owned(), n_str.clone(), model.to_owned()];
            let mut means = Vec::new();
            for (i, &loss) in LOSS_RATES.iter().enumerate() {
                let spread = SpreadConfig::new(entry.source).with_loss_probability(loss);
                let g = &entry.graph;
                let mean: OnlineStats = run_trials_parallel(
                    cfg.trials,
                    mix_seed(cfg, SALT + i as u64),
                    cfg.threads,
                    |_, rng| {
                        if model == "sync" {
                            run_sync_config(g, &spread, rng, sync_round_budget(g)).rounds as f64
                        } else {
                            run_async_config(g, &spread, rng, default_max_steps(g)).time
                        }
                    },
                )
                .into_iter()
                .collect();
                means.push(mean.mean());
                cells.push(fmt_f(mean.mean(), 2));
            }
            cells.push(fmt_f(means[2] / means[0], 3));
            table.add_row(cells);
        }
    }
    table.add_note("memoryless thinning predicts T(p) ~ T(0)/(1-p): T(0.5)/T(0) ~ 2");
    table
}

/// The `T(0.5)/T(0)` column (test hook).
pub fn degradation_ratios(table: &Table) -> Vec<f64> {
    (0..table.row_count()).map(|r| table.cell(r, 7).unwrap().parse().unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_is_graceful_and_near_double_at_half_loss() {
        let cfg = ExperimentConfig::quick().with_trials(60);
        let table = run(&cfg);
        for (i, ratio) in degradation_ratios(&table).iter().enumerate() {
            assert!(
                (1.3..3.0).contains(ratio),
                "row {i}: T(0.5)/T(0) = {ratio}, expected graceful ~2x degradation"
            );
        }
    }

    #[test]
    fn loss_columns_increase_monotonically() {
        let cfg = ExperimentConfig::quick().with_trials(40);
        let table = run(&cfg);
        for r in 0..table.row_count() {
            let ts: Vec<f64> = (3..7).map(|c| table.cell(r, c).unwrap().parse().unwrap()).collect();
            assert!(
                ts.windows(2).all(|w| w[0] < w[1]),
                "row {r}: times not increasing in loss: {ts:?}"
            );
        }
    }
}
