//! **E1 — Theorem 1.** `T₁/ₙ(pp-a, G, u) = O(T₁/ₙ(pp, G, u) + log n)`.
//!
//! For every graph family and size, estimate the high-probability
//! spreading time of synchronous and asynchronous push–pull and report
//! the normalized ratio `T̂_async / (T̂_sync + ln n)`. Theorem 1 says this
//! ratio is bounded by a universal constant; the star is the family where
//! the additive `ln n` term carries all the weight.

use rumor_core::asynchronous::AsyncView;
use rumor_core::runner::high_probability_time;
use rumor_core::Mode;
use rumor_sim::rng::Xoshiro256PlusPlus;

use crate::experiments::common::{
    mix_seed, sample_async, sample_sync, standard_suite, sweep_sizes, ExperimentConfig,
};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE1;

/// Runs E1 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E1 / Theorem 1: async hp time vs sync hp time + ln n (push-pull)",
        &["graph", "n", "T_sync_hp", "T_async_hp", "ln n", "ratio"],
    );
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x617);
    let mut worst: f64 = 0.0;
    for n in sweep_sizes(cfg) {
        for entry in standard_suite(n, &mut graph_rng) {
            let n_actual = entry.graph.node_count();
            let sync = sample_sync(&entry, Mode::PushPull, cfg, SALT);
            let asy = sample_async(&entry, Mode::PushPull, AsyncView::GlobalClock, cfg, SALT + 1);
            let t_sync = high_probability_time(&sync, n_actual);
            let t_async = high_probability_time(&asy, n_actual);
            let ln_n = (n_actual as f64).ln();
            let ratio = t_async / (t_sync + ln_n);
            worst = worst.max(ratio);
            table.add_row(vec![
                entry.name.to_owned(),
                n_actual.to_string(),
                fmt_f(t_sync, 1),
                fmt_f(t_async, 2),
                fmt_f(ln_n, 2),
                fmt_f(ratio, 3),
            ]);
        }
    }
    table.add_note(&format!(
        "Theorem 1 predicts ratio = O(1) uniformly over graphs and n; worst observed = {}",
        fmt_f(worst, 3)
    ));
    table.add_note("hp quantile = empirical (1 - 1/n)-quantile over the trial sample");
    table
}

/// The largest normalized ratio in a finished E1 table (test hook).
pub fn worst_ratio(table: &Table) -> f64 {
    (0..table.row_count())
        .map(|r| table.cell(r, 5).expect("ratio column").parse::<f64>().expect("numeric"))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_bounds_ratio() {
        let cfg = ExperimentConfig::quick().with_trials(40);
        let table = run(&cfg);
        assert!(table.row_count() >= 10);
        // Theorem 1's constant: empirically ratios sit well below 8 even
        // at small n with Monte-Carlo noise.
        let worst = worst_ratio(&table);
        assert!(worst < 8.0, "normalized ratio {worst} too large");
        assert!(worst > 0.0);
    }
}
