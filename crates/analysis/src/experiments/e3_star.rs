//! **E3 — the star example (§1).** Synchronous push–pull informs an
//! `n`-star within 2 rounds; the asynchronous protocol needs `Θ(log n)`
//! time. This is the paper's witness that Theorem 1's additive `O(log n)`
//! term cannot be removed.
//!
//! The series sweeps doubling star sizes, reports both times, and fits
//! `T_async(n) ≈ a·ln n + b` — the fit quality (`r²`) certifies the
//! logarithmic shape.

use rumor_core::asynchronous::AsyncView;
use rumor_core::runner::high_probability_time;
use rumor_core::Mode;
use rumor_graph::generators;
use rumor_sim::fit::log_fit;
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{sample_async, sample_sync, ExperimentConfig, SuiteEntry};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE3;

/// Star sizes for the sweep.
pub fn sizes(cfg: &ExperimentConfig) -> Vec<usize> {
    if cfg.full_scale {
        vec![64, 256, 1024, 4096, 16384]
    } else {
        vec![32, 128, 512]
    }
}

/// Runs E3 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E3 / star graph: sync <= 2 rounds vs async Theta(log n)",
        &["n", "T_sync_hp", "E[T_async]", "T_async_hp", "ln n"],
    );
    let mut ns = Vec::new();
    let mut means = Vec::new();
    for n in sizes(cfg) {
        // Source is a leaf: the configuration the paper discusses.
        let entry = SuiteEntry { name: "star", graph: generators::star(n), source: 1 };
        let sync = sample_sync(&entry, Mode::PushPull, cfg, SALT);
        let asy = sample_async(&entry, Mode::PushPull, AsyncView::GlobalClock, cfg, SALT + 1);
        let t_sync = high_probability_time(&sync, n);
        let asy_stats: OnlineStats = asy.iter().copied().collect();
        let t_async = high_probability_time(&asy, n);
        ns.push(n as f64);
        means.push(asy_stats.mean());
        table.add_row(vec![
            n.to_string(),
            fmt_f(t_sync, 1),
            fmt_f(asy_stats.mean(), 2),
            fmt_f(t_async, 2),
            fmt_f((n as f64).ln(), 2),
        ]);
    }
    let fit = log_fit(&ns, &means);
    table.add_note(&format!(
        "log fit: E[T_async] ~ {}*ln n + {} (r^2 = {})",
        fmt_f(fit.slope, 2),
        fmt_f(fit.intercept, 2),
        fmt_f(fit.r2, 4),
    ));
    table.add_note("sync hp time must be <= 2 for every n (intro example)");
    table
}

/// Parses the sync column and returns its maximum (test hook).
pub fn max_sync_rounds(table: &Table) -> f64 {
    (0..table.row_count())
        .map(|r| table.cell(r, 1).expect("sync column").parse::<f64>().expect("numeric"))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_is_at_most_two_and_async_grows() {
        let cfg = ExperimentConfig::quick().with_trials(50);
        let table = run(&cfg);
        assert!(max_sync_rounds(&table) <= 2.0);
        // Async time grows monotonically with n (log shape).
        let first: f64 = table.cell(0, 2).unwrap().parse().unwrap();
        let last: f64 = table.cell(table.row_count() - 1, 2).unwrap().parse().unwrap();
        assert!(last > first, "async time should grow with n ({first} -> {last})");
    }
}
