//! **E22 — topology models at matched expected churn.** The
//! `TopologyModel` layer makes evolution models interchangeable; this
//! experiment runs the asynchronous push–pull protocol under all five
//! dynamic models on the same sparse `G(n, p)` base, with parameters
//! chosen so every model rewires the **same expected number of edges
//! per unit time** (`m · ν`, the matched churn volume):
//!
//! * **edge-Markov**, symmetric rate ν — every edge chain flips at rate
//!   ν, `m·ν` flips per unit time;
//! * **rewire**, period `1/ν` — each snapshot redraws all `m` edges,
//!   `m·ν` changes per unit time;
//! * **random-walk**, per-edge rate ν — `m·ν` walk steps per unit time;
//! * **mobility**, move rate ν/2 at matched density — each move rewires
//!   about `d̄ = 2m/n` edges, `n · (ν/2) · d̄ = m·ν` per unit time;
//! * **adversary**, budget `b`, strike rate `m·ν / 2b` — each strike
//!   cuts up to `b` frontier edges and later heals them, `m·ν` changes
//!   per unit time placed *adversarially*.
//!
//! The shape this table is after: benign churn at fixed volume barely
//! moves `E[T]` on a well-connected base (edge-Markov, walk, rewire sit
//! near the static baseline; rewiring can even help), while the *same
//! volume* of change aimed at the informed/uninformed frontier is the
//! most damaging way to spend it — the adversary row must show the
//! largest slowdown. Censored (budget-exhausted) trials are counted
//! separately and never averaged into `E[T]` (the PR 3 censoring
//! contract).

use rumor_core::dynamic::{
    Adversary, DynamicModel, EdgeMarkov, Mobility, RandomWalk, Rewire, SnapshotFamily,
};
use rumor_core::runner;
use rumor_core::spec::{Protocol, SimSpec, Topology};
use rumor_graph::{generators, Graph};
use rumor_sim::rng::Xoshiro256PlusPlus;
use rumor_sim::stats::OnlineStats;

use crate::experiments::common::{mix_seed, ratio_cell, CensoredSamples, ExperimentConfig};
use crate::table::{fmt_f, Table};

const SALT: u64 = 0xE22;

/// Matched per-edge churn volume: expected edge changes per unit time
/// is `edge_count · NU` for every model in the sweep.
pub const NU: f64 = 1.0;

/// Frontier edges the adversary may cut per strike.
pub const ADVERSARY_BUDGET: usize = 4;

/// The five dynamic models (plus the static baseline first), matched to
/// `m·ν` expected edge changes per unit time on base graph `g`.
pub fn matched_models(g: &Graph) -> Vec<(&'static str, DynamicModel)> {
    let m = g.edge_count() as f64;
    vec![
        ("static", DynamicModel::Static),
        ("markov", DynamicModel::EdgeMarkov(EdgeMarkov::symmetric(NU))),
        (
            "rewire",
            DynamicModel::Rewire(Rewire::new(1.0 / NU, SnapshotFamily::matching_density(g))),
        ),
        ("walk", DynamicModel::RandomWalk(RandomWalk::new(NU))),
        ("mobility", DynamicModel::Mobility(Mobility::matching_density(g, NU / 2.0, 0.1))),
        (
            "adversary",
            DynamicModel::Adversary(Adversary::new(
                m * NU / (2.0 * ADVERSARY_BUDGET as f64),
                ADVERSARY_BUDGET,
                1.0,
            )),
        ),
    ]
}

/// Runs E22 and returns the table.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        "E22 / topology models: spreading time across evolution models at matched expected churn (m*nu edge changes per unit time)",
        &["n", "model", "E[T]", "vs static", "censored", "topo events/unit"],
    );
    let sizes: Vec<usize> = if cfg.full_scale { vec![64, 256] } else { vec![48] };
    let mut graph_rng = Xoshiro256PlusPlus::seed_from(mix_seed(cfg, SALT) ^ 0x22D);
    for &n in &sizes {
        let p = 2.0 * (n as f64).ln() / n as f64;
        let g = generators::gnp_connected(n, p, &mut graph_rng, 200);
        let max_steps = runner::default_max_steps(&g).saturating_mul(8);
        let mut static_mean: Option<f64> = None;
        for (name, model) in matched_models(&g) {
            // The report's per-trial outcomes carry the topology-event
            // counts; the realized event rate is diagnostic output
            // showing the matching (event granularity differs per
            // model — see note).
            let report = SimSpec::on_graph(&g)
                .protocol(Protocol::push_pull_async())
                .topology(Topology::Model(model))
                .trials(cfg.trials)
                .seed(mix_seed(cfg, SALT))
                .threads(cfg.threads)
                .max_steps(max_steps)
                .build()
                .expect("valid E22 spec")
                .run();
            let samples = CensoredSamples::from_report(&report);
            let mut event_rate = OnlineStats::new();
            for trial in &report.outcomes {
                if trial.completed && trial.value > 0.0 {
                    event_rate.push(trial.topology_events as f64 / trial.value);
                }
            }
            if name == "static" {
                static_mean = samples.mean_completed();
            }
            table.add_row(vec![
                n.to_string(),
                name.to_owned(),
                samples.mean_cell(3),
                ratio_cell(samples.mean_completed(), static_mean, 3),
                samples.censored.to_string(),
                fmt_f(event_rate.mean(), 1),
            ]);
        }
    }
    table.add_note(&format!(
        "matched volume: every model is parameterized for m*nu = m*{NU} expected edge changes \
         per unit time; mobility runs at matched expected degree (radius sqrt(d/(pi n)))"
    ));
    table.add_note(
        "`topo events/unit` counts each model's own event granularity (flips, snapshots, walk \
         steps, moves, strikes+heals), so it differs from the edge-change volume by the \
         per-event fan-out",
    );
    table.add_note(&format!(
        "adversary: strike rate m*nu/(2b) with budget b = {ADVERSARY_BUDGET}, heal delay 1.0 — \
         the same churn volume as the benign rows, spent entirely on the informed/uninformed \
         frontier",
    ));
    table.add_note(
        "E[T] averages completed trials only; the `censored` column counts budget-exhausted \
         trials (their times are lower bounds and are never averaged)",
    );
    table
}

/// Test hook: `(model, vs-static ratio)` pairs for size-`n` rows.
pub fn model_ratios(table: &Table, n: usize) -> Vec<(String, f64)> {
    (0..table.row_count())
        .filter(|&r| table.cell(r, 0) == Some(n.to_string().as_str()))
        .map(|r| (table.cell(r, 1).unwrap().to_owned(), table.cell(r, 3).unwrap().parse().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_models_run_and_the_adversary_hurts_most() {
        let cfg = ExperimentConfig::quick().with_trials(30);
        let table = run(&cfg);
        let rows = model_ratios(&table, 48);
        let names: Vec<&str> = rows.iter().map(|(m, _)| m.as_str()).collect();
        assert_eq!(names, ["static", "markov", "rewire", "walk", "mobility", "adversary"]);
        let ratio = |name: &str| rows.iter().find(|(m, _)| m == name).unwrap().1;
        assert_eq!(ratio("static"), 1.0);
        // Benign churn at this volume stays within a constant band of
        // the static baseline on a well-connected G(n, p).
        for name in ["markov", "rewire", "walk"] {
            let r = ratio(name);
            assert!(r > 0.4 && r < 2.5, "{name} ratio {r} out of the benign band");
        }
        // The adversary spends the same volume on the frontier and must
        // be the slowest dynamic model on the base graph's topology.
        let adv = ratio("adversary");
        for name in ["markov", "rewire", "walk"] {
            assert!(adv > ratio(name), "adversary ({adv}) not slower than {name}");
        }
        // Every dynamic row actually fired topology events.
        for r in 1..table.row_count() {
            let rate: f64 = table.cell(r, 5).unwrap().parse().unwrap();
            assert!(rate > 0.0, "row {r} shows no topology events");
        }
    }
}
