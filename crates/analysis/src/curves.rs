//! Spreading-curve comparison tables.
//!
//! The observability layer ([`rumor_core::obs`]) captures per-trial
//! informed-set growth and aggregates it into mean
//! [`CurveSummary`] curves. This module renders the paper's
//! qualitative picture — *when* each model informs each fraction of
//! the network, not just the total spreading time — as an aligned
//! table: one row per informed fraction, one column per model, plus
//! the async/sync ratio. §1 of the paper notes the async model informs
//! the *bulk* of the network faster even when its total spreading time
//! is no better; the interior rows (25%–90%) are where that shows.

use rumor_core::spec::RunReport;
use rumor_core::CurveSummary;

use crate::table::Table;

/// The informed fractions tabulated by [`sync_async_fraction_table`]:
/// early growth, the bulk, and saturation.
pub const FRACTIONS: [f64; 7] = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];

/// Tabulates the time each model needs to reach each fraction of
/// [`FRACTIONS`], with the async/sync ratio (`-` where a curve never
/// gets there, e.g. censored runs).
///
/// The sync curve is measured in rounds and the async curve in time
/// units — the paper's models agree on that normalization (one round ≈
/// one expected activation per node), which is what makes the ratio
/// meaningful.
pub fn sync_async_fraction_table(sync: &CurveSummary, asy: &CurveSummary) -> Table {
    let mut t = Table::new(
        "time to informed fraction: sync (rounds) vs async (time units)",
        &["fraction", "sync", "async", "async/sync"],
    );
    for phi in FRACTIONS {
        let s = sync.time_to_fraction(phi);
        let a = asy.time_to_fraction(phi);
        let ratio = match (s, a) {
            (Some(s), Some(a)) if s > 0.0 => format!("{:.3}", a / s),
            _ => "-".to_owned(),
        };
        let cell = |v: Option<f64>| v.map_or("-".to_owned(), |t| format!("{t:.3}"));
        t.add_row(vec![format!("{phi}"), cell(s), cell(a), ratio]);
    }
    t.add_note(&format!("sync: {} trials, async: {} trials", sync.trials, asy.trials));
    t
}

/// Builds the fraction table straight from a coupled run's metrics
/// (`sync_informed` / `async_informed` curves). `None` unless the
/// report was produced by a coupled spec with metrics enabled.
pub fn fraction_table_from_coupled(report: &RunReport) -> Option<Table> {
    let m = report.metrics.as_ref()?;
    Some(sync_async_fraction_table(m.curve("sync_informed")?, m.curve("async_informed")?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::dynamic::{DynamicModel, EdgeMarkov};
    use rumor_core::spec::{GraphSpec, Protocol, SimSpec, Topology};
    use rumor_core::MetricsLevel;

    #[test]
    fn coupled_report_tabulates_fraction_times() {
        let report = SimSpec::new(GraphSpec::Gnp { n: 24, p: 0.3, seed: 5, attempts: 100 })
            .protocol(Protocol::push_pull_async())
            .topology(Topology::Model(DynamicModel::EdgeMarkov(EdgeMarkov::symmetric(1.0))))
            .coupled(true)
            .trials(6)
            .metrics(MetricsLevel::Summary)
            .build()
            .unwrap()
            .run();
        let table = fraction_table_from_coupled(&report).expect("coupled metrics carry curves");
        let text = table.to_text();
        assert!(text.contains("fraction"), "{text}");
        assert!(text.contains("0.5"), "{text}");
        assert!(text.contains("6 trials"), "{text}");
        // Every fraction row has a sync time (the runs completed).
        assert!(text.matches('\n').count() >= FRACTIONS.len(), "{text}");
    }

    #[test]
    fn metrics_off_reports_have_no_table() {
        let report = SimSpec::new(GraphSpec::Complete { n: 8 })
            .protocol(Protocol::push_pull_async())
            .coupled(true)
            .topology(Topology::Model(DynamicModel::Static))
            .trials(2)
            .build()
            .unwrap()
            .run();
        assert!(fraction_table_from_coupled(&report).is_none());
    }
}
