//! The fleet subsystem: executing sweep-expanded work-lists of run
//! specs across worker processes, and the long-running simulation
//! service loop.
//!
//! The spec layer (PR 5) made every run a one-file `.spec` artifact and
//! the observability layer (PR 6) made run outputs deterministic; this
//! crate scales both from one-spec-one-process to parameter grids and a
//! persistent service:
//!
//! * [`frame`] — length-prefixed byte frames, the wire framing both the
//!   worker protocol and the service speak over any `Read`/`Write`
//!   pair;
//! * [`report`] — the [`RunReport`](rumor_core::RunReport) ⇄ JSON wire
//!   codec and the merged, provenance-stamped `FleetReport` artifact
//!   (schema [`FLEET_SCHEMA`]);
//! * [`dispatch`] — expands a [`SweepSpec`](rumor_core::SweepSpec) into
//!   its validated work-list, optionally auto-tunes `auto` budgets with
//!   a pilot pass, executes the list in-process or across `rumor
//!   worker` child processes (crashed workers are retried once), and
//!   merges the child reports into one `FleetReport`;
//! * [`service`] — the shared frame loop behind `rumor worker` and
//!   `rumor serve`, with cross-request graph/trace caching
//!   ([`RunCaches`](rumor_core::RunCaches)) on the serve path.
//!
//! Determinism contract: the merged `FleetReport` is byte-identical for
//! any worker count (including the in-process path) — results are
//! slotted by child index, the artifact carries no scheduling
//! information, and the JSON renderer is the deterministic one the
//! metrics artifacts already use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatch;
pub mod frame;
pub mod report;
pub mod service;

pub use dispatch::{dispatch, DispatchOptions, FleetError, FleetOutcome};
pub use report::{report_from_json, report_to_json, telemetry_from_json, FLEET_SCHEMA};
pub use service::{run_frames, serve_socket, ServiceConfig, ServiceExit};
