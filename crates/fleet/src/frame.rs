//! Length-prefixed byte frames: a 4-byte big-endian length followed by
//! that many payload bytes. The framing both the dispatcher⇄worker
//! protocol and the `rumor serve` loop speak, over pipes or sockets.

use std::io::{self, Read, Write};

/// Frames larger than this are rejected on both sides (a corrupted or
/// misaligned length prefix would otherwise trigger a giant
/// allocation).
pub const MAX_FRAME: u32 = 1 << 28;

/// Writes one frame and flushes (the reader on the other side blocks
/// until the frame is complete, so every frame is flushed eagerly).
///
/// # Errors
///
/// `InvalidInput` when the payload exceeds [`MAX_FRAME`]; otherwise
/// whatever the underlying writer reports.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds MAX_FRAME"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` signals clean end-of-stream (EOF exactly
/// at a frame boundary); EOF inside a frame is an `UnexpectedEof`
/// error.
///
/// # Errors
///
/// `InvalidData` on an oversized length prefix, `UnexpectedEof` on a
/// truncated frame, otherwise whatever the underlying reader reports.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                ))
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&[7u8; 1000][..]));
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncation_and_oversize_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // Truncated payload.
        let mut r = &buf[..6];
        assert!(read_frame(&mut r).is_err());
        // Truncated header.
        let mut r = &buf[..2];
        assert!(read_frame(&mut r).is_err());
        // Oversized length prefix.
        let bad = (MAX_FRAME + 1).to_be_bytes();
        assert!(read_frame(&mut bad.as_slice()).is_err());
    }
}
