//! The frame-request loop behind `rumor worker` and `rumor serve`.
//!
//! Both modes speak the same protocol: each request is one
//! [`frame`](crate::frame) holding a JSON object, each response one
//! frame with the matching `id` echoed back.
//!
//! | request                  | response                               |
//! |--------------------------|----------------------------------------|
//! | `{id, spec: "<text>"}`   | `{id, report: {...}}` or `{id, error}` |
//! | `{id, stats: true}`      | `{id, counters: {...}}`                |
//!
//! The two modes differ only in configuration: a worker runs each spec
//! uncached (so its reports carry no cache counters and stay
//! byte-identical to an in-process run), while `rumor serve` binds a
//! shared [`RunCaches`] so repeated specs hit the graph and
//! topology-trace caches.

use std::io::{self, Read, Write};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::Arc;

use rumor_core::obs::json::Json;
use rumor_core::spec::SimSpec;
use rumor_core::RunCaches;

use crate::frame::{read_frame, write_frame};
use crate::report::report_to_json;

/// How a [`run_frames`] loop behaves.
#[derive(Debug, Default, Clone)]
pub struct ServiceConfig {
    /// Cross-request graph/trace caches (`rumor serve`); `None` runs
    /// every spec cold (`rumor worker`).
    pub caches: Option<Arc<RunCaches>>,
    /// Abort (without responding) when about to serve request number
    /// `n+1` — the crash-injection hook behind `rumor worker
    /// --exit-after n` and the dispatcher's retry tests.
    pub exit_after: Option<u64>,
}

/// Why a [`run_frames`] loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceExit {
    /// The input stream ended cleanly after serving this many requests.
    Eof(u64),
    /// The configured `exit_after` limit was hit after serving this
    /// many requests; the pending request got no response. The caller
    /// should exit nonzero to complete the simulated crash.
    Aborted(u64),
}

/// Serves frame requests from `input` until end-of-stream.
///
/// Every request gets exactly one response frame (malformed requests
/// get an `{id: null, error}` response rather than killing the loop),
/// flushed before the next read.
///
/// # Errors
///
/// Only transport errors: a truncated or oversized frame, or a failed
/// write. Bad requests and failed runs are reported in-band.
pub fn run_frames(
    input: &mut impl Read,
    output: &mut impl Write,
    config: &ServiceConfig,
) -> io::Result<ServiceExit> {
    let mut served = 0u64;
    while let Some(payload) = read_frame(input)? {
        if config.exit_after == Some(served) {
            return Ok(ServiceExit::Aborted(served));
        }
        let response = respond(&payload, config);
        write_frame(output, response.render().as_bytes())?;
        served += 1;
    }
    Ok(ServiceExit::Eof(served))
}

fn respond(payload: &[u8], config: &ServiceConfig) -> Json {
    let (id, result) = match parse_request(payload) {
        Ok((id, request)) => (id, handle(request, config)),
        Err(e) => (Json::Null, Err(e)),
    };
    let body = match result {
        Ok(body) => body,
        Err(message) => ("error".to_owned(), Json::Str(message)),
    };
    Json::Obj(vec![("id".to_owned(), id), body])
}

enum Request {
    Run(Box<SimSpec>),
    Stats,
}

fn parse_request(payload: &[u8]) -> Result<(Json, Request), String> {
    let text = std::str::from_utf8(payload).map_err(|_| "request is not UTF-8".to_owned())?;
    let doc = Json::parse(text).map_err(|e| format!("bad request JSON: {e}"))?;
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    if let Some(spec_text) = doc.get("spec").and_then(Json::as_str) {
        let spec = SimSpec::parse(spec_text).map_err(|e| format!("bad spec: {e}"))?;
        return Ok((id, Request::Run(Box::new(spec))));
    }
    if matches!(doc.get("stats"), Some(Json::Bool(true))) {
        return Ok((id, Request::Stats));
    }
    Err("request has neither `spec` nor `stats: true`".to_owned())
}

fn handle(request: Request, config: &ServiceConfig) -> Result<(String, Json), String> {
    match request {
        Request::Run(spec) => {
            let sim = match &config.caches {
                Some(caches) => spec.build_cached(caches),
                None => spec.build(),
            }
            .map_err(|e| format!("bad spec: {e}"))?;
            Ok(("report".to_owned(), report_to_json(&sim.run())))
        }
        Request::Stats => {
            let counters = match &config.caches {
                Some(caches) => caches.counters(),
                None => Vec::new(),
            };
            let fields =
                counters.into_iter().map(|(name, v)| (name, Json::Num(v as f64))).collect();
            Ok(("counters".to_owned(), Json::Obj(fields)))
        }
    }
}

/// Binds a unix socket at `path` and serves connections sequentially,
/// all sharing one [`RunCaches`] — the `rumor serve --socket` mode.
///
/// A pre-existing socket file at `path` is removed first (the stale
/// leftover of a previous service). `max_connections` bounds how many
/// connections are accepted before returning (`None` serves forever).
///
/// # Errors
///
/// Bind/accept errors, or a transport error on a connection.
pub fn serve_socket(
    path: &Path,
    caches: Arc<RunCaches>,
    max_connections: Option<u64>,
) -> io::Result<()> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    let config = ServiceConfig { caches: Some(caches), exit_after: None };
    let mut accepted = 0u64;
    while max_connections.is_none_or(|cap| accepted < cap) {
        let (stream, _) = listener.accept()?;
        let mut reader = io::BufReader::new(stream.try_clone()?);
        let mut writer = io::BufWriter::new(stream);
        run_frames(&mut reader, &mut writer, &config)?;
        accepted += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::spec::{GraphSpec, Protocol};

    fn quick_spec() -> SimSpec {
        SimSpec::new(GraphSpec::Complete { n: 8 }).protocol(Protocol::push_pull_async()).trials(3)
    }

    fn request(id: f64, spec: &SimSpec) -> Vec<u8> {
        let doc = Json::Obj(vec![
            ("id".to_owned(), Json::Num(id)),
            ("spec".to_owned(), Json::Str(spec.to_spec_string().unwrap())),
        ]);
        let mut buf = Vec::new();
        write_frame(&mut buf, doc.render().as_bytes()).unwrap();
        buf
    }

    fn responses(output: &[u8]) -> Vec<Json> {
        let mut r = output;
        let mut docs = Vec::new();
        while let Some(frame) = read_frame(&mut r).unwrap() {
            docs.push(Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap());
        }
        docs
    }

    #[test]
    fn serves_runs_and_matches_direct_execution() {
        let mut input = request(1.0, &quick_spec());
        input.extend(request(2.0, &quick_spec().trials(2)));
        let mut output = Vec::new();
        let exit =
            run_frames(&mut input.as_slice(), &mut output, &ServiceConfig::default()).unwrap();
        assert_eq!(exit, ServiceExit::Eof(2));
        let docs = responses(&output);
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("id").unwrap(), &Json::Num(1.0));
        let direct = report_to_json(&quick_spec().build().unwrap().run());
        assert_eq!(docs[0].get("report").unwrap(), &direct);
    }

    #[test]
    fn caches_warm_across_requests_and_stats_reports_them() {
        let caches = Arc::new(RunCaches::default());
        let config = ServiceConfig { caches: Some(caches), exit_after: None };
        let mut input = request(1.0, &quick_spec());
        input.extend(request(2.0, &quick_spec()));
        let stats = Json::Obj(vec![
            ("id".to_owned(), Json::Num(3.0)),
            ("stats".to_owned(), Json::Bool(true)),
        ]);
        write_frame(&mut input, stats.render().as_bytes()).unwrap();
        let mut output = Vec::new();
        run_frames(&mut input.as_slice(), &mut output, &config).unwrap();
        let docs = responses(&output);
        let counters = docs[2].get("counters").unwrap();
        assert_eq!(counters.get("graph_cache_misses").unwrap(), &Json::Num(1.0));
        assert_eq!(counters.get("graph_cache_hits").unwrap(), &Json::Num(1.0));
    }

    #[test]
    fn bad_requests_answer_in_band_and_exit_after_aborts() {
        let mut input = Vec::new();
        write_frame(&mut input, b"{\"id\": 9}").unwrap();
        input.extend(request(1.0, &quick_spec()));
        let mut output = Vec::new();
        let config = ServiceConfig { caches: None, exit_after: Some(1) };
        let exit = run_frames(&mut input.as_slice(), &mut output, &config).unwrap();
        assert_eq!(exit, ServiceExit::Aborted(1));
        let docs = responses(&output);
        assert_eq!(docs.len(), 1);
        assert!(docs[0].get("error").is_some());
    }
}
