//! The [`RunReport`] ⇄ JSON wire codec and the merged `FleetReport`
//! artifact.
//!
//! Both directions ride on the deterministic [`Json`] value the metrics
//! artifacts already use: `render ∘ parse` is a fixed point, so a
//! report serialized by a worker process, parsed by the dispatcher, and
//! re-rendered into the fleet artifact is byte-identical to the same
//! report serialized in-process — the property the byte-for-byte CI
//! replay of `FleetReport`s rests on.
//!
//! Counters are written as JSON numbers (`f64`), exact up to 2⁵³ —
//! far beyond any budgeted run's step counts.

use rumor_core::obs::json::Json;
use rumor_core::spec::{CoupledOutcome, RunReport, Telemetry, TrialOutcome, Unit};

/// Schema tag of the merged fleet artifact.
pub const FLEET_SCHEMA: &str = "rumor-fleet v1";

/// Serializes a run report for the wire / the fleet artifact.
pub fn report_to_json(r: &RunReport) -> Json {
    let mut fields = vec![
        ("unit".to_owned(), Json::Str(r.unit.to_string())),
        ("outcomes".to_owned(), Json::Arr(r.outcomes.iter().map(outcome_json).collect())),
    ];
    if let Some(coupled) = &r.coupled {
        fields.push(("coupled".to_owned(), Json::Arr(coupled.iter().map(coupled_json).collect())));
    }
    fields.push(("telemetry".to_owned(), telemetry_json(&r.telemetry)));
    if let Some(m) = &r.metrics {
        fields.push(("metrics".to_owned(), m.to_json()));
    }
    Json::Obj(fields)
}

/// Reconstructs a run report from its wire form.
///
/// A `metrics` payload, if present, is **not** reconstructed (the
/// in-memory metrics bundle holds strictly more than its artifact);
/// consumers that need it read the JSON directly. The returned report
/// has `metrics: None`.
///
/// # Errors
///
/// A message naming the missing or mistyped field.
pub fn report_from_json(doc: &Json) -> Result<RunReport, String> {
    let unit = match doc.get("unit").and_then(Json::as_str) {
        Some("rounds") => Unit::Rounds,
        Some("time units") => Unit::TimeUnits,
        Some("paired") => Unit::Paired,
        other => return Err(format!("bad report unit {other:?}")),
    };
    let outcomes = doc
        .get("outcomes")
        .and_then(Json::as_arr)
        .ok_or("report has no outcomes array")?
        .iter()
        .map(outcome_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let coupled = match doc.get("coupled") {
        None => None,
        Some(c) => Some(
            c.as_arr()
                .ok_or("coupled is not an array")?
                .iter()
                .map(coupled_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        ),
    };
    let telemetry = telemetry_from_json(doc.get("telemetry").ok_or("report has no telemetry")?)?;
    Ok(RunReport { unit, outcomes, coupled, telemetry, metrics: None })
}

fn outcome_json(o: &TrialOutcome) -> Json {
    Json::Obj(vec![
        ("value".to_owned(), Json::Num(o.value)),
        ("completed".to_owned(), Json::Bool(o.completed)),
        ("steps".to_owned(), Json::Num(o.steps as f64)),
        ("topology_events".to_owned(), Json::Num(o.topology_events as f64)),
    ])
}

fn outcome_from_json(j: &Json) -> Result<TrialOutcome, String> {
    Ok(TrialOutcome {
        value: num(j, "value")?,
        completed: boolean(j, "completed")?,
        steps: num(j, "steps")? as u64,
        topology_events: num(j, "topology_events")? as u64,
    })
}

fn coupled_json(o: &CoupledOutcome) -> Json {
    Json::Obj(vec![
        ("sync_rounds".to_owned(), Json::Num(o.sync_rounds)),
        ("sync_completed".to_owned(), Json::Bool(o.sync_completed)),
        ("async_time".to_owned(), Json::Num(o.async_time)),
        ("async_completed".to_owned(), Json::Bool(o.async_completed)),
        ("trace_steps".to_owned(), Json::Num(o.trace_steps as f64)),
    ])
}

fn coupled_from_json(j: &Json) -> Result<CoupledOutcome, String> {
    Ok(CoupledOutcome {
        sync_rounds: num(j, "sync_rounds")?,
        sync_completed: boolean(j, "sync_completed")?,
        async_time: num(j, "async_time")?,
        async_completed: boolean(j, "async_completed")?,
        trace_steps: num(j, "trace_steps")? as usize,
    })
}

pub(crate) fn telemetry_json(t: &Telemetry) -> Json {
    Json::Obj(vec![
        ("steps".to_owned(), Json::Num(t.steps as f64)),
        ("topology_events".to_owned(), Json::Num(t.topology_events as f64)),
        ("windows".to_owned(), Json::Num(t.windows as f64)),
        ("cross_events".to_owned(), Json::Num(t.cross_events as f64)),
        ("clocks_touched".to_owned(), Json::Num(t.clocks_touched as f64)),
        ("base_edges".to_owned(), Json::Num(t.base_edges as f64)),
        ("trace_steps".to_owned(), Json::Num(t.trace_steps as f64)),
    ])
}

/// Reconstructs a telemetry bundle from its wire form (the merge input
/// of the dispatcher's telemetry monoid).
///
/// # Errors
///
/// A message naming the missing or mistyped field.
pub fn telemetry_from_json(j: &Json) -> Result<Telemetry, String> {
    Ok(Telemetry {
        steps: num(j, "steps")? as u64,
        topology_events: num(j, "topology_events")? as u64,
        windows: num(j, "windows")? as u64,
        cross_events: num(j, "cross_events")? as u64,
        clocks_touched: num(j, "clocks_touched")? as u64,
        base_edges: num(j, "base_edges")? as u64,
        trace_steps: num(j, "trace_steps")? as u64,
    })
}

/// Trial and censored counts of a wire-form report (uncoupled reports
/// count incomplete outcomes, coupled reports incomplete pairs).
///
/// # Errors
///
/// A message naming the malformed field.
pub fn report_counts(doc: &Json) -> Result<(u64, u64), String> {
    if let Some(coupled) = doc.get("coupled").and_then(Json::as_arr) {
        let censored = coupled
            .iter()
            .filter(|o| {
                !(boolean(o, "sync_completed").unwrap_or(false)
                    && boolean(o, "async_completed").unwrap_or(false))
            })
            .count();
        return Ok((coupled.len() as u64, censored as u64));
    }
    let outcomes = doc.get("outcomes").and_then(Json::as_arr).ok_or("report has no outcomes")?;
    let censored = outcomes.iter().filter(|o| !boolean(o, "completed").unwrap_or(true)).count();
    Ok((outcomes.len() as u64, censored as u64))
}

fn num(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key).and_then(Json::as_num).ok_or_else(|| format!("missing number `{key}`"))
}

fn boolean(j: &Json, key: &str) -> Result<bool, String> {
    match j.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing bool `{key}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::spec::{GraphSpec, Protocol, SimSpec};

    #[test]
    fn uncoupled_report_round_trips() {
        let report = SimSpec::new(GraphSpec::Complete { n: 8 })
            .protocol(Protocol::push_pull_async())
            .trials(5)
            .build()
            .unwrap()
            .run();
        let doc = report_to_json(&report);
        // render ∘ parse is a fixed point (the byte-replay property).
        let text = doc.render();
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed.render(), text);
        assert_eq!(report_from_json(&reparsed).unwrap(), report);
        let (trials, censored) = report_counts(&doc).unwrap();
        assert_eq!((trials, censored), (5, report.censored() as u64));
    }

    #[test]
    fn coupled_report_round_trips() {
        let report = SimSpec::new(GraphSpec::Complete { n: 8 })
            .protocol(Protocol::push_pull_async())
            .coupled(true)
            .trials(4)
            .build()
            .unwrap()
            .run();
        let doc = report_to_json(&report);
        assert_eq!(report_from_json(&doc).unwrap(), report);
        let merged = telemetry_from_json(doc.get("telemetry").unwrap()).unwrap();
        assert_eq!(merged, report.telemetry);
        assert_eq!(report_counts(&doc).unwrap().0, 4);
    }
}
