//! Sweep execution: expand, optionally pilot-tune, run the work-list
//! (in-process or across worker processes), merge into one
//! `FleetReport`.
//!
//! The dispatcher's one invariant is that the merged artifact is
//! byte-identical however the work-list was scheduled. Everything that
//! could leak scheduling — which worker ran which child, retry counts,
//! queue order — lives in [`FleetOutcome`] beside the document, never
//! inside it, and results are slotted by child index regardless of
//! completion order. Workers run their specs uncached for the same
//! reason: cache hit counters would differ between worker counts.

use std::collections::VecDeque;
use std::io::BufReader;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rumor_core::obs::json::Json;
use rumor_core::obs::{emit_warning, Warning};
use rumor_core::spec::{SpecError, Telemetry, Unit};
use rumor_core::{SweepChild, SweepSpec};

use crate::frame::{read_frame, write_frame};
use crate::report::{
    report_counts, report_to_json, telemetry_from_json, telemetry_json, FLEET_SCHEMA,
};

/// How [`dispatch`] executes a sweep.
#[derive(Debug, Clone)]
pub struct DispatchOptions {
    /// Worker process count; `0` or `1` runs the work-list in-process.
    pub workers: usize,
    /// Command line of one worker process; empty means
    /// `[current_exe, "worker"]` (the self-exec default of `rumor
    /// sweep`). Tests substitute `rumor worker --exit-after n` here to
    /// inject crashes.
    pub worker_cmd: Vec<String>,
    /// Run an in-process pilot pass first, shrinking `auto` budgets and
    /// horizons toward what the pilot trials actually needed.
    pub pilot: bool,
    /// Trials per child in the pilot pass (capped by the child's own
    /// trial count).
    pub pilot_trials: usize,
}

impl Default for DispatchOptions {
    fn default() -> Self {
        DispatchOptions { workers: 0, worker_cmd: Vec::new(), pilot: false, pilot_trials: 4 }
    }
}

/// What went wrong while dispatching.
#[derive(Debug)]
pub enum FleetError {
    /// The sweep failed to expand or a tuned child failed to
    /// re-validate.
    Spec(SpecError),
    /// A transport problem: spawning workers, broken pipes, malformed
    /// frames.
    Io(String),
    /// A worker rejected a spec, or crashed twice on the same child.
    Worker(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Spec(e) => write!(f, "{e}"),
            FleetError::Io(m) => write!(f, "dispatch i/o: {m}"),
            FleetError::Worker(m) => write!(f, "worker: {m}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<SpecError> for FleetError {
    fn from(e: SpecError) -> Self {
        FleetError::Spec(e)
    }
}

/// A finished dispatch: the artifact plus the scheduling facts that
/// deliberately stay out of it.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The merged `FleetReport` document (render it to get the
    /// artifact bytes).
    pub doc: Json,
    /// How many children each worker slot completed (one entry per
    /// slot; `[n]` for the in-process path).
    pub jobs_per_worker: Vec<usize>,
    /// How many crashed-worker retries were needed.
    pub retries: usize,
}

/// Expands `sweep`, executes every child, and merges the reports.
///
/// Children execute in any order but the document lists them in
/// expansion order with each child's exact spec text, so the artifact
/// is a function of the sweep alone.
///
/// # Errors
///
/// [`FleetError::Spec`] if expansion or pilot re-validation fails,
/// [`FleetError::Io`] on transport problems, [`FleetError::Worker`] if
/// a worker rejects a spec or crashes twice on the same child.
pub fn dispatch(sweep: &SweepSpec, options: &DispatchOptions) -> Result<FleetOutcome, FleetError> {
    let mut children = sweep.expand()?;
    if options.pilot {
        pilot_tune(&mut children, options.pilot_trials)?;
    }
    let (reports, jobs_per_worker, retries) = if options.workers <= 1 {
        let reports = children
            .iter()
            .map(|c| Ok(report_to_json(&c.spec.build()?.run())))
            .collect::<Result<Vec<_>, SpecError>>()?;
        let jobs = vec![children.len()];
        (reports, jobs, 0)
    } else {
        execute_processes(&children, options)?
    };
    let doc = fleet_doc(sweep, &children, &reports)?;
    Ok(FleetOutcome { doc, jobs_per_worker, retries })
}

// ---------------------------------------------------------------------------
// Pilot tuning
// ---------------------------------------------------------------------------

/// Runs a few in-process trials of every child that still has `auto`
/// budgets and shrinks those budgets toward the observed need (with a
/// generous safety factor), so full worker runs don't carry
/// worst-case defaults. Children whose pilot censored are left alone —
/// a tight budget derived from a censored pilot would censor the real
/// run too.
fn pilot_tune(children: &mut [SweepChild], pilot_trials: usize) -> Result<(), FleetError> {
    for child in children {
        let plan = &child.spec.plan;
        let tunable = plan.max_steps.is_none()
            || plan.max_rounds.is_none()
            || (plan.coupled && plan.horizon.is_none());
        if !tunable {
            continue;
        }
        let defaults = child.spec.build()?;
        let trials = pilot_trials.clamp(1, plan.trials);
        let pilot = child.spec.clone().trials(trials).threads(1).build()?.run();
        if pilot.censored() > 0 {
            emit_warning(&Warning::note(
                "pilot",
                format!("pilot censored for [{}]; keeping default budgets", child.point),
            ));
            continue;
        }
        let mut tuned = child.spec.clone();
        if let Some(coupled) = &pilot.coupled {
            let max_rounds = coupled.iter().map(|o| o.sync_rounds).fold(0.0, f64::max);
            let max_time = coupled.iter().map(|o| o.async_time).fold(0.0, f64::max);
            let max_steps = coupled.iter().map(|o| o.trace_steps).max().unwrap_or(0) as u64;
            if tuned.plan.max_rounds.is_none() && max_rounds > 0.0 {
                tuned = tuned.max_rounds(((max_rounds as u64 + 1) * 4).min(defaults.max_rounds()));
            }
            if tuned.plan.horizon.is_none() && max_time > 0.0 {
                tuned = tuned.horizon((max_time * 2.0).min(defaults.horizon()));
            }
            if tuned.plan.max_steps.is_none() && max_steps > 0 {
                tuned = tuned.max_steps((max_steps * 4).max(1).min(defaults.max_steps()));
            }
        } else {
            let max_steps = pilot.outcomes.iter().map(|o| o.steps).max().unwrap_or(0);
            if tuned.plan.max_steps.is_none() && max_steps > 0 {
                tuned = tuned.max_steps((max_steps * 4).max(1).min(defaults.max_steps()));
            }
            if tuned.plan.max_rounds.is_none() && pilot.unit == Unit::Rounds {
                let rounds = pilot.outcomes.iter().map(|o| o.value).fold(0.0, f64::max);
                if rounds > 0.0 {
                    tuned = tuned.max_rounds(((rounds as u64 + 1) * 4).min(defaults.max_rounds()));
                }
            }
        }
        // Re-validate and refresh the canonical text; the artifact
        // records exactly what the workers ran.
        tuned.build()?;
        child.text = tuned.to_spec_string()?;
        child.spec = tuned;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Multi-process execution
// ---------------------------------------------------------------------------

struct Worker {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Worker {
    fn spawn(cmd: &[String]) -> Result<Worker, FleetError> {
        let mut child = Command::new(&cmd[0])
            .args(&cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| FleetError::Io(format!("spawning `{}`: {e}", cmd[0])))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(Worker { child, stdin, stdout })
    }

    fn shutdown(mut self) {
        drop(self.stdin);
        let _ = self.child.wait();
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

enum JobFailure {
    /// The worker died or the pipe broke — retryable once.
    Transport(String),
    /// The worker answered with an error — the spec is at fault, no
    /// retry.
    Rejected(String),
}

fn run_job(worker: &mut Worker, child: &SweepChild) -> Result<Json, JobFailure> {
    let request = Json::Obj(vec![
        ("id".to_owned(), Json::Num(child.index as f64)),
        ("spec".to_owned(), Json::Str(child.text.clone())),
    ]);
    write_frame(&mut worker.stdin, request.render().as_bytes())
        .map_err(|e| JobFailure::Transport(format!("request write failed: {e}")))?;
    let payload = read_frame(&mut worker.stdout)
        .map_err(|e| JobFailure::Transport(format!("response read failed: {e}")))?
        .ok_or_else(|| JobFailure::Transport("worker exited before responding".to_owned()))?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| JobFailure::Transport("response is not UTF-8".to_owned()))?;
    let doc =
        Json::parse(text).map_err(|e| JobFailure::Transport(format!("bad response JSON: {e}")))?;
    if doc.get("id").and_then(Json::as_num) != Some(child.index as f64) {
        return Err(JobFailure::Transport("response id does not match request".to_owned()));
    }
    if let Some(message) = doc.get("error").and_then(Json::as_str) {
        return Err(JobFailure::Rejected(format!("[{}]: {message}", child.point)));
    }
    doc.get("report")
        .cloned()
        .ok_or_else(|| JobFailure::Transport("response has neither report nor error".to_owned()))
}

#[allow(clippy::type_complexity)]
fn execute_processes(
    children: &[SweepChild],
    options: &DispatchOptions,
) -> Result<(Vec<Json>, Vec<usize>, usize), FleetError> {
    let cmd = if options.worker_cmd.is_empty() {
        let exe = std::env::current_exe()
            .map_err(|e| FleetError::Io(format!("locating own executable: {e}")))?;
        vec![exe.to_string_lossy().into_owned(), "worker".to_owned()]
    } else {
        options.worker_cmd.clone()
    };
    let slots = options.workers.min(children.len()).max(1);
    let queue: Mutex<VecDeque<usize>> = Mutex::new(children.iter().map(|c| c.index).collect());
    let results: Mutex<Vec<Option<Json>>> = Mutex::new(vec![None; children.len()]);
    let jobs_done: Vec<AtomicUsize> = (0..slots).map(|_| AtomicUsize::new(0)).collect();
    let retries = AtomicUsize::new(0);
    let fatal: Mutex<Option<FleetError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for slot in 0..slots {
            let cmd = &cmd;
            let queue = &queue;
            let results = &results;
            let jobs_done = &jobs_done;
            let retries = &retries;
            let fatal = &fatal;
            scope.spawn(move || {
                let mut worker: Option<Worker> = None;
                'jobs: loop {
                    if fatal.lock().unwrap().is_some() {
                        break;
                    }
                    let Some(index) = queue.lock().unwrap().pop_front() else { break };
                    let child = &children[index];
                    // First attempt on the slot's current worker, and
                    // after a crash exactly one more on a fresh spawn —
                    // a retried child never lands on a worker with
                    // history, so only a genuinely poisonous child can
                    // fail twice.
                    for attempt in 0..2 {
                        let mut w =
                            match worker.take().map(Ok).unwrap_or_else(|| Worker::spawn(cmd)) {
                                Ok(w) => w,
                                Err(e) => {
                                    *fatal.lock().unwrap() = Some(e);
                                    break 'jobs;
                                }
                            };
                        match run_job(&mut w, child) {
                            Ok(report) => {
                                results.lock().unwrap()[index] = Some(report);
                                jobs_done[slot].fetch_add(1, Ordering::Relaxed);
                                worker = Some(w);
                                continue 'jobs;
                            }
                            Err(JobFailure::Transport(message)) => {
                                w.kill();
                                if attempt == 0 {
                                    emit_warning(&Warning::note(
                                        "dispatch",
                                        format!(
                                            "worker crashed on [{}] ({message}); retrying on \
                                             a fresh worker",
                                            child.point
                                        ),
                                    ));
                                    retries.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    *fatal.lock().unwrap() = Some(FleetError::Worker(format!(
                                        "[{}] failed twice: {message}",
                                        child.point
                                    )));
                                    break 'jobs;
                                }
                            }
                            Err(JobFailure::Rejected(message)) => {
                                w.kill();
                                *fatal.lock().unwrap() = Some(FleetError::Worker(message));
                                break 'jobs;
                            }
                        }
                    }
                }
                if let Some(w) = worker {
                    w.shutdown();
                }
            });
        }
    });

    if let Some(e) = fatal.into_inner().unwrap() {
        return Err(e);
    }
    let results = results.into_inner().unwrap();
    let reports = results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.ok_or_else(|| FleetError::Io(format!("child {i} never completed"))))
        .collect::<Result<Vec<_>, _>>()?;
    let jobs = jobs_done.iter().map(|j| j.load(Ordering::Relaxed)).collect();
    Ok((reports, jobs, retries.into_inner()))
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

fn fleet_doc(
    sweep: &SweepSpec,
    children: &[SweepChild],
    reports: &[Json],
) -> Result<Json, FleetError> {
    let mut telemetry = Telemetry::default();
    let mut trials = 0u64;
    let mut censored = 0u64;
    let mut child_docs = Vec::with_capacity(children.len());
    for (child, report) in children.iter().zip(reports) {
        let t = report
            .get("telemetry")
            .ok_or_else(|| FleetError::Io("child report has no telemetry".to_owned()))
            .and_then(|t| telemetry_from_json(t).map_err(FleetError::Io))?;
        telemetry.merge(&t);
        let (tr, ce) = report_counts(report).map_err(FleetError::Io)?;
        trials += tr;
        censored += ce;
        child_docs.push(Json::Obj(vec![
            ("point".to_owned(), Json::Str(child.point.clone())),
            ("spec".to_owned(), Json::Str(child.text.clone())),
            ("report".to_owned(), report.clone()),
        ]));
    }
    Ok(Json::Obj(vec![
        ("schema".to_owned(), Json::Str(FLEET_SCHEMA.to_owned())),
        ("sweep".to_owned(), Json::Str(sweep.to_spec_string()?)),
        ("children".to_owned(), Json::Arr(child_docs)),
        ("telemetry".to_owned(), telemetry_json(&telemetry)),
        (
            "summary".to_owned(),
            Json::Obj(vec![
                ("children".to_owned(), Json::Num(children.len() as f64)),
                ("trials".to_owned(), Json::Num(trials as f64)),
                ("censored".to_owned(), Json::Num(censored as f64)),
            ]),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_core::spec::{GraphSpec, Protocol, SimSpec};

    fn quick_sweep() -> SweepSpec {
        let base = SimSpec::new(GraphSpec::Complete { n: 8 })
            .protocol(Protocol::push_pull_async())
            .trials(3)
            .seed(11);
        SweepSpec::new(base)
            .axis("graph.n", ["8", "12"])
            .unwrap()
            .axis("trials", ["2", "3"])
            .unwrap()
    }

    #[test]
    fn local_dispatch_merges_in_expansion_order() {
        let outcome = dispatch(&quick_sweep(), &DispatchOptions::default()).unwrap();
        let children = outcome.doc.get("children").unwrap().as_arr().unwrap();
        assert_eq!(children.len(), 4);
        let points: Vec<_> =
            children.iter().map(|c| c.get("point").unwrap().as_str().unwrap().to_owned()).collect();
        assert_eq!(
            points,
            [
                "graph.n=8 trials=2",
                "graph.n=8 trials=3",
                "graph.n=12 trials=2",
                "graph.n=12 trials=3"
            ]
        );
        let summary = outcome.doc.get("summary").unwrap();
        assert_eq!(summary.get("trials").unwrap(), &Json::Num(10.0));
        assert_eq!(outcome.jobs_per_worker, vec![4]);
        assert_eq!(outcome.retries, 0);
        // The artifact replays: render ∘ parse ∘ render is stable.
        let text = outcome.doc.render();
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn merged_telemetry_is_the_sum_of_children() {
        let outcome = dispatch(&quick_sweep(), &DispatchOptions::default()).unwrap();
        let children = outcome.doc.get("children").unwrap().as_arr().unwrap();
        let mut expect = Telemetry::default();
        for c in children {
            expect.merge(
                &telemetry_from_json(c.get("report").unwrap().get("telemetry").unwrap()).unwrap(),
            );
        }
        let merged = telemetry_from_json(outcome.doc.get("telemetry").unwrap()).unwrap();
        assert_eq!(merged, expect);
    }

    #[test]
    fn pilot_shrinks_auto_budgets_without_changing_results() {
        let sweep = quick_sweep();
        let plain = dispatch(&sweep, &DispatchOptions::default()).unwrap();
        let piloted =
            dispatch(&sweep, &DispatchOptions { pilot: true, ..DispatchOptions::default() })
                .unwrap();
        // Budgets only move when a run would otherwise censor; on this
        // quick grid every trial completes, so outcome values agree.
        let value = |doc: &Json| {
            doc.get("children").unwrap().as_arr().unwrap()[0]
                .get("report")
                .unwrap()
                .get("outcomes")
                .unwrap()
                .as_arr()
                .unwrap()[0]
                .get("value")
                .unwrap()
                .as_num()
                .unwrap()
        };
        assert_eq!(value(&plain.doc), value(&piloted.doc));
        // The piloted artifact records the tuned spec text.
        let spec_text = piloted.doc.get("children").unwrap().as_arr().unwrap()[0]
            .get("spec")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        assert!(spec_text.contains("max_steps = "), "tuned text: {spec_text}");
        assert!(!spec_text.contains("max_steps = auto"), "tuned text: {spec_text}");
    }
}
