//! Offline stand-in for the subset of the `proptest` crate this
//! workspace uses. See `crates/shims/README.md`.
//!
//! Implements random generation from strategies (integer ranges, tuples,
//! [`Just`], [`collection::vec`], `prop_map`, `prop_flat_map`) and the
//! [`proptest!`] / `prop_assert*` macros. Failing cases are reported with
//! their inputs but are **not shrunk** — this shim trades minimal
//! counterexamples for zero dependencies.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed test-case assertion, carrying its message.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

// Floating-point ranges sample uniformly over the interval (the real
// proptest biases toward edge cases; a uniform draw is enough for the
// simulation parameters this workspace sweeps).
impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number-of-elements specification for [`vec`]: an exact count or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self { min: exact, max_exclusive: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { min: r.start, max_exclusive: r.end }
        }
    }

    /// A strategy producing vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// its inputs reported) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality version of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Inequality version of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng =
                    $crate::TestRng::new(0xB10C_5EED_u64.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                $(let $arg = ($strat).sample(&mut rng);)+
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {:#?}",
                        case + 1,
                        config.cases,
                        err,
                        ($(&$arg,)+)
                    );
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}
