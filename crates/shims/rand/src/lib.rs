//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: the [`RngCore`] trait and its [`Error`] type. See
//! `crates/shims/README.md`.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible RNG operations (never produced by the
/// deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Wraps a message into an RNG error.
    pub fn new<E: fmt::Display>(err: E) -> Self {
        Self { msg: err.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}
