//! Offline stand-in for the subset of the `criterion` benchmarking crate
//! this workspace uses. See `crates/shims/README.md`.
//!
//! Instead of Criterion's statistical pipeline, each benchmark is timed
//! with a plain wall-clock loop: a short warm-up, then up to
//! `sample_size` iterations (bounded by a per-benchmark time budget),
//! reporting the median, mean, minimum, and maximum iteration time.
//!
//! Set `CRITERION_JSON=<path>` to additionally append one JSON line per
//! benchmark (`{"label", "median_ns", "mean_ns", "min_ns", "max_ns",
//! "samples"}`) to that file — the hook the committed `BENCH_PR*.json`
//! baselines are produced with.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark time budget; keeps full `cargo bench` runs bounded.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free argument (as passed by `cargo bench -- <filter>`)
        // filters benchmarks by substring, like real criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned(), sample_size: 100 }
    }

    /// Times a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        if self.matches(&label) {
            run_one(&label, 100, &mut f);
        }
        self
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        if self.criterion.matches(&label) {
            run_one(&label, self.sample_size, &mut f);
        }
        self
    }

    /// Times a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        if self.criterion.matches(&label) {
            run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        }
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { label: format!("{name}/{parameter}") }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

/// Handed to benchmark closures; its [`iter`](Bencher::iter) method does
/// the timing.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times repeated calls of `f`, recording one sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = *bencher.samples.iter().min().expect("non-empty");
    let max = *bencher.samples.iter().max().expect("non-empty");
    let median = {
        let mut sorted = bencher.samples.clone();
        sorted.sort_unstable();
        let mid = sorted.len() / 2;
        if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2
        } else {
            sorted[mid]
        }
    };
    println!(
        "{label:<50} time: [{:>12?} {:>12?} {:>12?} {:>12?}]  ({} samples, min med mean max)",
        min,
        median,
        mean,
        max,
        bencher.samples.len()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            append_json_line(&path, label, median, mean, min, max, bencher.samples.len());
        }
    }
}

/// Appends one benchmark record to the `CRITERION_JSON` file; hand-rolled
/// JSON (the label set is shim-internal: quotes never occur in labels).
fn append_json_line(
    path: &str,
    label: &str,
    median: Duration,
    mean: Duration,
    min: Duration,
    max: Duration,
    samples: usize,
) {
    let line = format!(
        "{{\"label\":\"{}\",\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}\n",
        label.replace('"', "'"),
        median.as_nanos(),
        mean.as_nanos(),
        min.as_nanos(),
        max.as_nanos(),
        samples
    );
    let written = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("CRITERION_JSON: could not append to {path}: {e}");
    }
}

/// Collects benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` for a benchmark binary, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}
