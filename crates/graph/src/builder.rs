//! Incremental graph construction with validation.

use crate::csr::{Graph, Node};
use crate::error::GraphError;

/// Accumulates edges and produces a validated [`Graph`].
///
/// Duplicate edges are tolerated and deduplicated at [`build`] time, so
/// random generators can add edges freely. Self-loops and out-of-range
/// endpoints are rejected immediately — those are programming errors in a
/// generator, not data conditions.
///
/// [`build`]: GraphBuilder::build
///
/// # Example
///
/// ```
/// use rumor_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate, deduplicated at build time
/// b.add_edge(2, 3);
/// let g = b.build()?;
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), rumor_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<(Node, Node)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `node_count` nodes (labeled
    /// `0..node_count`).
    pub fn new(node_count: usize) -> Self {
        Self { node_count, edges: Vec::new() }
    }

    /// Creates a builder expecting roughly `edge_hint` edges.
    pub fn with_edge_capacity(node_count: usize, edge_hint: usize) -> Self {
        Self { node_count, edges: Vec::with_capacity(edge_hint) }
    }

    /// Number of nodes the graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges added so far (duplicates included).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loop) or either endpoint is out of range.
    /// Generators must never produce such edges; failing fast here keeps
    /// the CSR invariants airtight.
    pub fn add_edge(&mut self, u: Node, v: Node) -> &mut Self {
        assert!(u != v, "self-loop at node {u}");
        assert!(
            (u as usize) < self.node_count && (v as usize) < self.node_count,
            "edge ({u}, {v}) out of range for {} nodes",
            self.node_count
        );
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        self
    }

    /// Like [`add_edge`](Self::add_edge) but returns an error instead of
    /// panicking; used by the edge-list parser where endpoints come from
    /// untrusted input.
    pub fn try_add_edge(&mut self, u: u64, v: u64) -> Result<&mut Self, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let nc = self.node_count as u64;
        if u >= nc || v >= nc {
            return Err(GraphError::NodeOutOfRange { node: u.max(v), node_count: nc });
        }
        Ok(self.add_edge(u as Node, v as Node))
    }

    /// Finalizes the graph: sorts adjacency, removes duplicate edges, and
    /// produces the CSR arrays.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] if the builder was created with
    /// zero nodes.
    pub fn build(mut self) -> Result<Graph, GraphError> {
        if self.node_count == 0 {
            return Err(GraphError::EmptyGraph);
        }
        // Deduplicate normalized (u < v) edge pairs.
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.node_count;
        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n {
            offsets.push(offsets[v] + degrees[v]);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as Node; offsets[n]];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Edges were sorted by (u, v), so each u's list is already sorted;
        // v's lists receive u in increasing u order, also sorted. A debug
        // check keeps us honest.
        debug_assert!((0..n).all(|v| {
            let s = &neighbors[offsets[v]..offsets[v + 1]];
            s.windows(2).all(|w| w[0] < w[1])
        }));
        Ok(Graph::from_csr(offsets, neighbors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(3, 0).add_edge(1, 2).add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn deduplicates_edges_in_both_orientations() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        GraphBuilder::new(2).add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        GraphBuilder::new(2).add_edge(0, 2);
    }

    #[test]
    fn try_add_edge_reports_errors() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(b.try_add_edge(1, 1).unwrap_err(), GraphError::SelfLoop { node: 1 });
        assert_eq!(
            b.try_add_edge(0, 7).unwrap_err(),
            GraphError::NodeOutOfRange { node: 7, node_count: 3 }
        );
        assert!(b.try_add_edge(0, 2).is_ok());
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn empty_graph_is_an_error() {
        assert_eq!(GraphBuilder::new(0).build().unwrap_err(), GraphError::EmptyGraph);
    }

    #[test]
    fn single_node_no_edges_builds() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn edge_capacity_constructor() {
        let b = GraphBuilder::with_edge_capacity(10, 100);
        assert_eq!(b.node_count(), 10);
        assert_eq!(b.edge_count(), 0);
    }
}
