//! Node partitions: the shard-aware view a parallel simulation engine
//! needs over a (mutable) graph.
//!
//! A [`Partition`] splits the node set into `k` disjoint shards and
//! answers, in O(1), *which shard owns node `v`* and *what is `v`'s
//! index within its shard*. On top of that it computes the quantities a
//! conservative parallel-discrete-event engine derives its lookahead
//! from: per-node and per-shard **cross rates** — the rate at which a
//! node's uniform-random contacts leave its shard, `extdeg(v)/deg(v)`
//! summed over the shard — against the *current* topology of a
//! [`MutableGraph`].
//!
//! The partition itself is immutable; topology churn changes the rates,
//! not the node assignment, which is why the rate helpers take the graph
//! as an argument instead of caching it.

use crate::csr::Node;
use crate::dynamic::MutableGraph;

/// Shard identifier; shards are numbered `0..k`.
pub type ShardId = u32;

/// A disjoint assignment of nodes to `k` non-empty shards.
///
/// # Example
///
/// ```
/// use rumor_graph::partition::Partition;
///
/// let part = Partition::contiguous(10, 3);
/// assert_eq!(part.shard_count(), 3);
/// assert_eq!(part.shard_of(0), 0);
/// assert_eq!(part.shard_of(9), 2);
/// let total: usize = (0..3).map(|s| part.nodes(s).len()).sum();
/// assert_eq!(total, 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Per node: owning shard.
    shard: Vec<ShardId>,
    /// Per node: index within `nodes(shard_of(v))`.
    local: Vec<u32>,
    /// `member_offsets[s]..member_offsets[s + 1]` indexes
    /// `member_nodes` for shard `s` — the same flat offsets+array
    /// layout as the CSR graph, replacing a `Vec<Vec<Node>>`.
    member_offsets: Vec<usize>,
    /// Concatenated per-shard member lists, each ascending.
    member_nodes: Vec<Node>,
}

impl Partition {
    /// Splits `0..n` into `k` contiguous index blocks of near-equal
    /// size (the first `n % k` shards get one extra node).
    ///
    /// Contiguous blocks are the partition of choice for graphs whose
    /// community structure follows node numbering (necklaces of
    /// cliques, lattices built row-major, …).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n`.
    pub fn contiguous(n: usize, k: usize) -> Self {
        assert!(k > 0, "need at least one shard");
        assert!(k <= n, "more shards ({k}) than nodes ({n})");
        let base = n / k;
        let extra = n % k;
        let mut assignment = Vec::with_capacity(n);
        for s in 0..k {
            let size = base + usize::from(s < extra);
            assignment.extend(std::iter::repeat_n(s as ShardId, size));
        }
        Self::from_assignment(assignment)
    }

    /// Builds a partition from an explicit node→shard map. Shard ids
    /// must form the dense range `0..k` with every shard non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is empty or any shard in `0..=max` has no
    /// members.
    pub fn from_assignment(assignment: Vec<ShardId>) -> Self {
        assert!(!assignment.is_empty(), "partition of an empty node set");
        let n = assignment.len();
        let k = assignment.iter().copied().max().expect("non-empty") as usize + 1;
        // Counting sort into the flat layout: sizes → prefix offsets →
        // placement (node order within a shard stays ascending because
        // nodes are visited in ascending order).
        let mut member_offsets = vec![0usize; k + 1];
        for &s in &assignment {
            member_offsets[s as usize + 1] += 1;
        }
        for s in 0..k {
            assert!(member_offsets[s + 1] > 0, "shard {s} has no nodes");
            member_offsets[s + 1] += member_offsets[s];
        }
        let mut local = vec![0u32; n];
        let mut member_nodes = vec![0 as Node; n];
        let mut cursor = member_offsets.clone();
        for (v, &s) in assignment.iter().enumerate() {
            let at = cursor[s as usize];
            local[v] = (at - member_offsets[s as usize]) as u32;
            member_nodes[at] = v as Node;
            cursor[s as usize] += 1;
        }
        Self { shard: assignment, local, member_offsets, member_nodes }
    }

    /// Number of shards `k`.
    pub fn shard_count(&self) -> usize {
        self.member_offsets.len() - 1
    }

    /// Number of nodes across all shards.
    pub fn node_count(&self) -> usize {
        self.shard.len()
    }

    /// The shard owning `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn shard_of(&self, v: Node) -> ShardId {
        self.shard[v as usize]
    }

    /// `v`'s index within [`nodes`](Self::nodes) of its shard.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn local_index(&self, v: Node) -> u32 {
        self.local[v as usize]
    }

    /// The nodes of shard `s`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[inline]
    pub fn nodes(&self, s: ShardId) -> &[Node] {
        let s = s as usize;
        &self.member_nodes[self.member_offsets[s]..self.member_offsets[s + 1]]
    }

    /// Whether `v` and `w` live in the same shard.
    #[inline]
    pub fn is_internal(&self, v: Node, w: Node) -> bool {
        self.shard[v as usize] == self.shard[w as usize]
    }

    /// The rate at which `v`'s uniform-random contacts cross its shard
    /// boundary under the current topology: `extdeg(v)/deg(v)` for an
    /// active node with neighbors, 0 otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for `net`.
    pub fn node_cross_rate(&self, net: &MutableGraph, v: Node) -> f64 {
        if !net.is_active(v) {
            return 0.0;
        }
        let deg = net.degree(v);
        if deg == 0 {
            return 0.0;
        }
        let ext = net.neighbors(v).iter().filter(|&&w| !self.is_internal(v, w)).count();
        ext as f64 / deg as f64
    }

    /// Per-shard *local* event rates and the total cross rate, under
    /// the current topology.
    ///
    /// Shard `i`'s node clocks tick at total rate `|shard i|`; a tick
    /// of `v` produces a cross-shard contact with probability
    /// `extdeg(v)/deg(v)`. The returned `local[i]` is the shard's rate
    /// of *non-crossing* events (internal contacts plus wasted ticks of
    /// isolated or departed nodes); the second component is the summed
    /// rate of crossing contacts over all shards — the event rate a
    /// conservative engine's lookahead horizon is derived from.
    ///
    /// # Panics
    ///
    /// Panics if `net` has a different node count.
    pub fn shard_rates(&self, net: &MutableGraph) -> (Vec<f64>, f64) {
        assert_eq!(net.node_count(), self.node_count(), "partition/graph node count mismatch");
        let mut local: Vec<f64> =
            self.member_offsets.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mut cross_total = 0.0;
        for v in 0..self.shard.len() as Node {
            let r = self.node_cross_rate(net, v);
            if r > 0.0 {
                local[self.shard[v as usize] as usize] -= r;
                cross_total += r;
            }
        }
        for l in &mut local {
            *l = l.max(0.0); // guard float rounding
        }
        (local, cross_total)
    }

    /// Number of undirected edges whose endpoints lie in different
    /// shards (the cut size).
    pub fn cut_edges(&self, net: &MutableGraph) -> usize {
        (0..self.shard.len() as Node)
            .map(|v| net.neighbors(v).iter().filter(|&&w| v < w && !self.is_internal(v, w)).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn contiguous_blocks_cover_all_nodes() {
        let part = Partition::contiguous(11, 4);
        assert_eq!(part.shard_count(), 4);
        assert_eq!(part.node_count(), 11);
        // 11 = 3 + 3 + 3 + 2.
        assert_eq!(part.nodes(0).len(), 3);
        assert_eq!(part.nodes(3).len(), 2);
        for v in 0..11u32 {
            let s = part.shard_of(v);
            let idx = part.local_index(v) as usize;
            assert_eq!(part.nodes(s)[idx], v);
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let part = Partition::contiguous(5, 1);
        assert_eq!(part.nodes(0), &[0, 1, 2, 3, 4]);
        let net = MutableGraph::from_graph(&generators::cycle(5));
        let (local, cross) = part.shard_rates(&net);
        assert_eq!(local, vec![5.0]);
        assert_eq!(cross, 0.0);
        assert_eq!(part.cut_edges(&net), 0);
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn rejects_more_shards_than_nodes() {
        Partition::contiguous(3, 4);
    }

    #[test]
    #[should_panic(expected = "no nodes")]
    fn rejects_empty_shards() {
        Partition::from_assignment(vec![0, 0, 2]);
    }

    #[test]
    fn cross_rates_on_a_split_cycle() {
        // Cycle 0-1-2-3-0 split in half: nodes 0 and 3, 1 and 2 are the
        // boundary; every node has one internal and one external
        // neighbor, so each contributes cross rate 1/2.
        let net = MutableGraph::from_graph(&generators::cycle(4));
        let part = Partition::contiguous(4, 2);
        let (local, cross) = part.shard_rates(&net);
        assert_eq!(cross, 2.0);
        assert_eq!(local, vec![1.0, 1.0]);
        assert_eq!(part.cut_edges(&net), 2);
        for v in 0..4u32 {
            assert_eq!(part.node_cross_rate(&net, v), 0.5);
        }
    }

    #[test]
    fn rates_follow_topology_changes() {
        let mut net = MutableGraph::from_graph(&generators::cycle(4));
        let part = Partition::contiguous(4, 2);
        // Remove one of the two cut edges: only 0-3 remains crossing.
        assert!(net.remove_edge(1, 2));
        let (local, cross) = part.shard_rates(&net);
        assert_eq!(part.cut_edges(&net), 1);
        // Node 1 now has degree 1, all internal; node 2 likewise.
        assert_eq!(part.node_cross_rate(&net, 1), 0.0);
        assert_eq!(part.node_cross_rate(&net, 0), 0.5);
        // Only 0 and 3 still have the crossing edge, 1/2 each.
        assert!((cross - 1.0).abs() < 1e-12, "got {cross}");
        assert!((local[0] - 1.5).abs() < 1e-12 && (local[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn inactive_nodes_contribute_no_cross_rate() {
        let mut net = MutableGraph::from_graph(&generators::complete(4));
        let part = Partition::contiguous(4, 2);
        net.deactivate(0);
        assert_eq!(part.node_cross_rate(&net, 0), 0.0);
        let (local, _) = part.shard_rates(&net);
        // Shard 0 still ticks at rate 2 (wasted ticks count as local).
        assert!(local[0] > 0.0 && local[0] <= 2.0);
    }

    #[test]
    fn necklace_partition_has_tiny_cut() {
        // 4 cliques of 8 in a chain, one bridge between consecutive
        // cliques: a 4-shard contiguous partition cuts exactly the 3
        // bridges.
        let g = generators::necklace_of_cliques(4, 8);
        let net = MutableGraph::from_graph(&g);
        let part = Partition::contiguous(32, 4);
        assert_eq!(part.cut_edges(&net), 3);
        let (_, cross) = part.shard_rates(&net);
        // Each bridge endpoint has degree 8, one external neighbor.
        assert!((cross - 6.0 / 8.0).abs() < 1e-12, "cross {cross}");
    }
}
