//! Structural graph properties: BFS, connectivity, diameter, degrees.

use crate::csr::{Graph, Node};

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `src`; unreachable nodes get [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `src` is out of range.
///
/// # Example
///
/// ```
/// use rumor_graph::{generators, props};
/// let g = generators::path(4);
/// assert_eq!(props::bfs_distances(&g, 0), vec![0, 1, 2, 3]);
/// ```
pub fn bfs_distances(g: &Graph, src: Node) -> Vec<u32> {
    assert!((src as usize) < g.node_count(), "source out of range");
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Whether the graph is connected (single node counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    bfs_distances(g, 0).iter().all(|&d| d != UNREACHABLE)
}

/// Eccentricity of `src`: the largest BFS distance from it, or `None` if
/// the graph is disconnected.
pub fn eccentricity(g: &Graph, src: Node) -> Option<usize> {
    let dist = bfs_distances(g, src);
    let max = *dist.iter().max().expect("graph has nodes");
    if max == UNREACHABLE {
        None
    } else {
        Some(max as usize)
    }
}

/// Exact diameter by all-pairs BFS (`O(n·m)`), or `None` if disconnected.
///
/// Fine for the experiment sizes in this workspace (n ≤ ~10⁴); not meant
/// for web-scale graphs.
pub fn diameter(g: &Graph) -> Option<usize> {
    let mut best = 0usize;
    for v in g.nodes() {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// Summary of a graph's degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Average degree `2m/n`.
    pub mean: f64,
    /// `Some(d)` if the graph is `d`-regular.
    pub regular: Option<usize>,
}

/// Computes [`DegreeStats`] for a graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    DegreeStats {
        min: g.min_degree(),
        max: g.max_degree(),
        mean: g.avg_degree(),
        regular: g.regular_degree(),
    }
}

/// Extracts the largest connected component as a new graph.
///
/// Returns the component graph and the mapping from new node indices to
/// the original ones (`mapping[new] == old`). Heavy-tailed random graphs
/// (Chung–Lu at moderate average degree) almost always contain a few
/// isolated vertices; the literature the paper cites studies rumor
/// spreading on the giant component, and so do the experiments here.
///
/// # Example
///
/// ```
/// use rumor_graph::{props, GraphBuilder};
/// let mut b = GraphBuilder::new(5);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(3, 4);
/// let g = b.build()?;
/// let (giant, mapping) = props::largest_component(&g);
/// assert_eq!(giant.node_count(), 3);
/// assert_eq!(mapping, vec![0, 1, 2]);
/// # Ok::<(), rumor_graph::GraphError>(())
/// ```
pub fn largest_component(g: &Graph) -> (Graph, Vec<Node>) {
    let n = g.node_count();
    // Label components.
    let mut comp = vec![usize::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = sizes.len();
        let mut size = 0usize;
        comp[start] = id;
        queue.push_back(start as Node);
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &w in g.neighbors(v) {
                if comp[w as usize] == usize::MAX {
                    comp[w as usize] = id;
                    queue.push_back(w);
                }
            }
        }
        sizes.push(size);
    }
    let best =
        sizes.iter().enumerate().max_by_key(|(_, &s)| s).map(|(i, _)| i).expect("graph has nodes");
    // Relabel the winning component's nodes in ascending order.
    let mut mapping = Vec::with_capacity(sizes[best]);
    let mut new_id = vec![u32::MAX; n];
    for v in 0..n {
        if comp[v] == best {
            new_id[v] = mapping.len() as u32;
            mapping.push(v as Node);
        }
    }
    let mut b = crate::GraphBuilder::with_edge_capacity(mapping.len(), g.edge_count());
    for (u, v) in g.edges() {
        if comp[u as usize] == best && comp[v as usize] == best {
            b.add_edge(new_id[u as usize], new_id[v as usize]);
        }
    }
    (b.build().expect("component is non-empty"), mapping)
}

/// Number of triangles in the graph (each counted once).
///
/// Uses the sorted-adjacency merge: for each edge `(u, v)` with `u < v`,
/// counts common neighbors `w > v`. `O(Σ_e (deg(u) + deg(v)))`.
pub fn triangle_count(g: &Graph) -> u64 {
    let mut count = 0u64;
    for (u, v) in g.edges() {
        let (mut i, mut j) = (0usize, 0usize);
        let (nu, nv) = (g.neighbors(u), g.neighbors(v));
        while i < nu.len() && j < nv.len() {
            let (a, b) = (nu[i], nv[j]);
            if a == b {
                if a > v {
                    count += 1;
                }
                i += 1;
                j += 1;
            } else if a < b {
                i += 1;
            } else {
                j += 1;
            }
        }
    }
    count
}

/// Global clustering coefficient: `3·triangles / open-or-closed wedges`
/// (`Σ_v deg(v)·(deg(v)−1)/2`). Returns 0 for graphs with no wedges.
pub fn global_clustering(g: &Graph) -> f64 {
    let wedges: u64 = g
        .nodes()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangle_count(g) as f64 / wedges as f64
    }
}

/// Degree histogram: `hist[d]` = number of nodes of degree `d`
/// (length `max_degree + 1`).
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Number of edges with exactly one endpoint in `set` (given as a
/// membership mask).
///
/// # Panics
///
/// Panics if `mask.len() != g.node_count()`.
pub fn edge_boundary(g: &Graph, mask: &[bool]) -> usize {
    assert_eq!(mask.len(), g.node_count(), "mask size mismatch");
    g.edges().filter(|&(u, v)| mask[u as usize] != mask[v as usize]).count()
}

/// Conductance of the cut `(S, V∖S)`:
/// `|∂S| / min(vol(S), vol(V∖S))`, with volume = sum of degrees.
/// Returns `None` if either side is empty (no cut).
///
/// # Panics
///
/// Panics if `mask.len() != g.node_count()`.
pub fn cut_conductance(g: &Graph, mask: &[bool]) -> Option<f64> {
    assert_eq!(mask.len(), g.node_count(), "mask size mismatch");
    let vol_s: usize = g.nodes().filter(|&v| mask[v as usize]).map(|v| g.degree(v)).sum();
    let vol_rest = 2 * g.edge_count() - vol_s;
    if vol_s == 0 || vol_rest == 0 {
        return None;
    }
    Some(edge_boundary(g, mask) as f64 / vol_s.min(vol_rest) as f64)
}

/// An upper bound on the graph conductance `Φ(G)` from a BFS sweep: the
/// minimum cut conductance over all prefixes of a breadth-first order
/// from `src`.
///
/// The paper's Theorem 1 transfers the known conductance-based bounds
/// (`T(pp) = O(log n / Φ)`, Giakkoupis 2011) to the asynchronous model;
/// this estimator gives the `Φ` to plug in.
///
/// # Panics
///
/// Panics if `src` is out of range or the graph is disconnected.
pub fn sweep_conductance_upper_bound(g: &Graph, src: Node) -> f64 {
    let dist = bfs_distances(g, src);
    assert!(dist.iter().all(|&d| d != UNREACHABLE), "sweep conductance requires a connected graph");
    let mut order: Vec<Node> = g.nodes().collect();
    order.sort_by_key(|&v| dist[v as usize]);
    let mut mask = vec![false; g.node_count()];
    let mut best = f64::INFINITY;
    for &v in order.iter().take(g.node_count() - 1) {
        mask[v as usize] = true;
        if let Some(phi) = cut_conductance(g, &mask) {
            best = best.min(phi);
        }
    }
    best
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = count;
        queue.push_back(start as Node);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if comp[w as usize] == usize::MAX {
                    comp[w as usize] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn bfs_on_cycle() {
        let g = generators::cycle(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build().unwrap();
        assert!(!is_connected(&g));
        assert_eq!(component_count(&g), 2);
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
    }

    #[test]
    fn diameter_of_known_families() {
        assert_eq!(diameter(&generators::complete(7)), Some(1));
        assert_eq!(diameter(&generators::star(10)), Some(2));
        assert_eq!(diameter(&generators::path(10)), Some(9));
        assert_eq!(diameter(&generators::cycle(9)), Some(4));
    }

    #[test]
    fn singleton_is_connected() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert!(is_connected(&g));
        assert_eq!(component_count(&g), 1);
        assert_eq!(diameter(&g), Some(0));
    }

    #[test]
    fn degree_stats_star() {
        let s = degree_stats(&generators::star(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.regular, None);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_regular() {
        let s = degree_stats(&generators::hypercube(4));
        assert_eq!(s.regular, Some(4));
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
    }

    #[test]
    fn component_count_isolated_nodes() {
        let g = GraphBuilder::new(3).build().unwrap();
        assert_eq!(component_count(&g), 3);
    }

    #[test]
    fn triangle_counts_of_known_graphs() {
        assert_eq!(triangle_count(&generators::complete(4)), 4);
        assert_eq!(triangle_count(&generators::complete(5)), 10);
        assert_eq!(triangle_count(&generators::cycle(3)), 1);
        assert_eq!(triangle_count(&generators::cycle(5)), 0);
        assert_eq!(triangle_count(&generators::star(10)), 0);
        assert_eq!(triangle_count(&generators::hypercube(4)), 0); // bipartite
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        assert!((global_clustering(&generators::complete(6)) - 1.0).abs() < 1e-12);
        assert_eq!(global_clustering(&generators::star(6)), 0.0);
        // Necklace of cliques: high clustering.
        let g = generators::necklace_of_cliques(3, 5);
        assert!(global_clustering(&g) > 0.7);
    }

    #[test]
    fn degree_histogram_star() {
        let hist = degree_histogram(&generators::star(5));
        assert_eq!(hist[1], 4);
        assert_eq!(hist[4], 1);
        assert_eq!(hist.iter().sum::<usize>(), 5);
    }

    #[test]
    fn edge_boundary_and_conductance() {
        let g = generators::cycle(8);
        let mut mask = vec![false; 8];
        mask[..4].fill(true); // an arc: boundary = 2 edges
        assert_eq!(edge_boundary(&g, &mask), 2);
        // vol(S) = 8, vol(rest) = 8 → Φ = 2/8.
        assert!((cut_conductance(&g, &mask).unwrap() - 0.25).abs() < 1e-12);
        // Degenerate cuts return None.
        assert_eq!(cut_conductance(&g, &[false; 8]), None);
        assert_eq!(cut_conductance(&g, &[true; 8]), None);
    }

    #[test]
    fn sweep_conductance_detects_bottleneck() {
        // Two cliques joined by one bridge: conductance ~ 1/vol(clique).
        let clique = generators::complete(8);
        let g = crate::ops::connect_with_bridge(&clique, &clique, 0, 0);
        let phi = sweep_conductance_upper_bound(&g, 0);
        assert!(phi < 0.05, "bottleneck missed: {phi}");
        // An expander-ish graph has much larger sweep conductance.
        let phi_k = sweep_conductance_upper_bound(&generators::complete(16), 0);
        assert!(phi_k > 0.4, "complete graph conductance {phi_k}");
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity() {
        let g = generators::cycle(8);
        let (giant, mapping) = largest_component(&g);
        assert_eq!(giant, g);
        assert_eq!(mapping, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn largest_component_picks_biggest() {
        let mut b = GraphBuilder::new(7);
        // Component A: 0-1; Component B: 2-3-4-5 (path); isolated: 6.
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        b.add_edge(4, 5);
        let g = b.build().unwrap();
        let (giant, mapping) = largest_component(&g);
        assert_eq!(giant.node_count(), 4);
        assert_eq!(giant.edge_count(), 3);
        assert_eq!(mapping, vec![2, 3, 4, 5]);
        assert!(is_connected(&giant));
        // Edges preserved under relabeling.
        assert!(giant.has_edge(0, 1));
        assert!(giant.has_edge(1, 2));
        assert!(giant.has_edge(2, 3));
        assert!(!giant.has_edge(0, 3));
    }
}
