//! Graph operations: induced subgraphs, unions, bridges, and Cartesian
//! products.
//!
//! These are the constructions used to assemble worst-case instances —
//! the paper's gadget graphs are unions-with-bridges of simple pieces,
//! and the hypercube is the d-fold Cartesian product of single edges
//! (which the tests here verify).

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Node};

/// The subgraph induced by `nodes`, relabeled `0..k` in the order given.
///
/// Returns the subgraph and the mapping from new indices to original
/// ones (`mapping[new] == old`).
///
/// # Panics
///
/// Panics if `nodes` is empty, contains duplicates, or contains an
/// out-of-range node.
///
/// # Example
///
/// ```
/// use rumor_graph::{generators, ops};
/// let g = generators::cycle(6);
/// let (sub, mapping) = ops::induced_subgraph(&g, &[0, 1, 2]);
/// assert_eq!(sub.node_count(), 3);
/// assert_eq!(sub.edge_count(), 2); // 0-1, 1-2; the wrap edge is cut
/// assert_eq!(mapping, vec![0, 1, 2]);
/// ```
pub fn induced_subgraph(g: &Graph, nodes: &[Node]) -> (Graph, Vec<Node>) {
    assert!(!nodes.is_empty(), "subgraph needs at least one node");
    let n = g.node_count();
    let mut new_id = vec![u32::MAX; n];
    for (new, &old) in nodes.iter().enumerate() {
        assert!((old as usize) < n, "node {old} out of range");
        assert!(new_id[old as usize] == u32::MAX, "duplicate node {old}");
        new_id[old as usize] = new as u32;
    }
    let mut b = GraphBuilder::new(nodes.len());
    for &old in nodes {
        for &w in g.neighbors(old) {
            if new_id[w as usize] != u32::MAX && old < w {
                b.add_edge(new_id[old as usize], new_id[w as usize]);
            }
        }
    }
    (b.build().expect("non-empty"), nodes.to_vec())
}

/// The disjoint union of two graphs; `b`'s nodes are shifted by
/// `a.node_count()`.
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    let offset = a.node_count() as Node;
    let mut builder = GraphBuilder::with_edge_capacity(
        a.node_count() + b.node_count(),
        a.edge_count() + b.edge_count(),
    );
    for (u, v) in a.edges() {
        builder.add_edge(u, v);
    }
    for (u, v) in b.edges() {
        builder.add_edge(u + offset, v + offset);
    }
    builder.build().expect("non-empty")
}

/// The disjoint union of `a` and `b` joined by a single bridge edge from
/// `a`'s node `u` to `b`'s node `v` (in `b`-local numbering).
///
/// # Panics
///
/// Panics if `u` or `v` is out of range for its graph.
pub fn connect_with_bridge(a: &Graph, b: &Graph, u: Node, v: Node) -> Graph {
    assert!((u as usize) < a.node_count(), "bridge endpoint u out of range");
    assert!((v as usize) < b.node_count(), "bridge endpoint v out of range");
    let offset = a.node_count() as Node;
    let mut builder = GraphBuilder::with_edge_capacity(
        a.node_count() + b.node_count(),
        a.edge_count() + b.edge_count() + 1,
    );
    for (x, y) in a.edges() {
        builder.add_edge(x, y);
    }
    for (x, y) in b.edges() {
        builder.add_edge(x + offset, y + offset);
    }
    builder.add_edge(u, v + offset);
    builder.build().expect("non-empty")
}

/// The Cartesian product `a □ b`: nodes are pairs `(i, j)` (encoded
/// `i·|b| + j`); `(i, j) ~ (i', j)` when `i ~ i'` in `a`, and
/// `(i, j) ~ (i, j')` when `j ~ j'` in `b`.
///
/// Degrees add: `deg(i, j) = deg_a(i) + deg_b(j)`; products of connected
/// graphs are connected; the `d`-fold product of `K₂` is the hypercube.
///
/// # Panics
///
/// Panics if the product would exceed `u32` node indices.
pub fn cartesian_product(a: &Graph, b: &Graph) -> Graph {
    let (na, nb) = (a.node_count(), b.node_count());
    let n = na.checked_mul(nb).expect("product size overflow");
    assert!(n <= u32::MAX as usize, "product exceeds u32 node indices");
    let id = |i: usize, j: usize| (i * nb + j) as Node;
    let mut builder =
        GraphBuilder::with_edge_capacity(n, a.edge_count() * nb + b.edge_count() * na);
    for (u, v) in a.edges() {
        for j in 0..nb {
            builder.add_edge(id(u as usize, j), id(v as usize, j));
        }
    }
    for (u, v) in b.edges() {
        for i in 0..na {
            builder.add_edge(id(i, u as usize), id(i, v as usize));
        }
    }
    builder.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, props};

    #[test]
    fn subgraph_of_complete_is_complete() {
        let g = generators::complete(6);
        let (sub, mapping) = induced_subgraph(&g, &[1, 3, 5]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 3);
        assert_eq!(mapping, vec![1, 3, 5]);
    }

    #[test]
    fn subgraph_respects_ordering() {
        let g = generators::path(5);
        let (sub, _) = induced_subgraph(&g, &[4, 3, 0]);
        // New labels: 4->0, 3->1, 0->2. Only edge 3-4 survives.
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(0, 1));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn subgraph_rejects_duplicates() {
        let g = generators::path(4);
        induced_subgraph(&g, &[0, 0]);
    }

    #[test]
    fn union_is_disconnected() {
        let g = disjoint_union(&generators::cycle(4), &generators::cycle(3));
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 7);
        assert!(!props::is_connected(&g));
        assert_eq!(props::component_count(&g), 2);
    }

    #[test]
    fn bridge_connects_the_union() {
        let g = connect_with_bridge(&generators::cycle(4), &generators::cycle(3), 2, 1);
        assert!(props::is_connected(&g));
        assert_eq!(g.edge_count(), 8);
        assert!(g.has_edge(2, 4 + 1));
    }

    #[test]
    fn product_of_paths_is_grid() {
        let p3 = generators::path(3);
        let p4 = generators::path(4);
        let product = cartesian_product(&p3, &p4);
        let grid = generators::grid(3, 4);
        assert_eq!(product, grid);
    }

    #[test]
    fn product_of_edges_is_hypercube() {
        let k2 = generators::complete(2);
        let mut g = k2.clone();
        for _ in 0..3 {
            g = cartesian_product(&g, &k2);
        }
        let q4 = generators::hypercube(4);
        // Same node/edge counts, regular degree, and diameter; the node
        // labelings coincide under bit-order, so the graphs are equal.
        assert_eq!(g.node_count(), q4.node_count());
        assert_eq!(g.edge_count(), q4.edge_count());
        assert_eq!(g.regular_degree(), q4.regular_degree());
        assert_eq!(props::diameter(&g), props::diameter(&q4));
    }

    #[test]
    fn product_degrees_add() {
        let a = generators::cycle(5);
        let b = generators::star(4);
        let g = cartesian_product(&a, &b);
        assert_eq!(g.node_count(), 20);
        for i in a.nodes() {
            for j in b.nodes() {
                let v = (i as usize * 4 + j as usize) as Node;
                assert_eq!(g.degree(v), a.degree(i) + b.degree(j));
            }
        }
        assert!(props::is_connected(&g));
    }

    #[test]
    fn torus_is_product_of_cycles() {
        let c4 = generators::cycle(4);
        let c5 = generators::cycle(5);
        let product = cartesian_product(&c4, &c5);
        let torus = generators::torus(4, 5);
        assert_eq!(product.node_count(), torus.node_count());
        assert_eq!(product.edge_count(), torus.edge_count());
        assert_eq!(product.regular_degree(), torus.regular_degree());
        assert_eq!(props::diameter(&product), props::diameter(&torus));
    }
}
