//! Planar point geometry for proximity (geometric mobility) models.
//!
//! A geometric dynamic network places nodes in the unit square and
//! connects every pair within a fixed radius. The expensive query is
//! *"who is near `v` right now?"* — answering it by scanning all `n`
//! positions makes every move event O(n). [`GridIndex`] buckets the
//! positions into a uniform grid whose cells are at least one radius
//! wide, so a radius query only inspects the 3 × 3 cell neighborhood of
//! the query point: O(occupancy) instead of O(n), the standard uniform
//! cell list of computational-geometry folklore.
//!
//! The index is deterministic: cell membership follows insertion and
//! move order, so simulations driven by a seeded RNG replay identically.
//!
//! The cell table and position buffer cycle through the thread-local
//! [`crate::arena`] pool: building one index per trial reuses the
//! previous trial's allocations (outer table *and* per-cell vectors)
//! instead of reallocating `Vec<Vec<Node>>` every realization.

use crate::arena;
use crate::csr::Node;

/// A uniform-grid spatial index over points in the unit square.
///
/// # Example
///
/// ```
/// use rumor_graph::geometry::GridIndex;
///
/// let grid = GridIndex::new(vec![(0.1, 0.1), (0.15, 0.1), (0.9, 0.9)], 0.2);
/// let mut near = Vec::new();
/// grid.within_radius(0, &mut near);
/// assert_eq!(near, vec![1]); // node 2 is far away
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    radius: f64,
    /// Cells per side; cell side length `1/cols >= radius`.
    cols: usize,
    pos: Vec<(f64, f64)>,
    cells: Vec<Vec<Node>>,
}

impl GridIndex {
    /// Builds an index over `positions` (all inside the unit square)
    /// with the given connection radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not in `(0, ∞)` or any coordinate is
    /// outside `[0, 1]`.
    pub fn new(positions: Vec<(f64, f64)>, radius: f64) -> Self {
        assert!(radius > 0.0 && radius.is_finite(), "radius must be positive and finite");
        for &(x, y) in &positions {
            assert!(
                (0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y),
                "position ({x}, {y}) outside the unit square"
            );
        }
        // Cells must be at least `radius` wide for 3x3 correctness; the
        // sqrt(n) cap keeps memory O(n) when the radius is tiny.
        let n = positions.len();
        let by_radius = (1.0 / radius).floor().max(1.0) as usize;
        let by_count = ((n as f64).sqrt().ceil() as usize).max(1);
        let cols = by_radius.min(by_count).max(1);
        let mut cells = arena::take_cells();
        let want = cols * cols;
        if cells.len() > want {
            cells.truncate(want);
        } else {
            cells.resize_with(want, Vec::new);
        }
        let mut index = Self { radius, cols, pos: positions, cells };
        for v in 0..index.pos.len() {
            let c = index.cell_index(index.pos[v]);
            index.cells[c].push(v as Node);
        }
        index
    }

    /// Number of indexed points.
    pub fn node_count(&self) -> usize {
        self.pos.len()
    }

    /// The connection radius the index was built for.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Current position of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn position(&self, v: Node) -> (f64, f64) {
        self.pos[v as usize]
    }

    /// Moves `v` to `(x, y)`, rebucketing it.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or the target is outside the unit
    /// square.
    pub fn move_to(&mut self, v: Node, x: f64, y: f64) {
        assert!(
            (0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y),
            "target ({x}, {y}) outside the unit square"
        );
        let old = self.cell_index(self.pos[v as usize]);
        let new = self.cell_index((x, y));
        self.pos[v as usize] = (x, y);
        if old != new {
            let slot = self.cells[old].iter().position(|&u| u == v).expect("node is in its cell");
            self.cells[old].swap_remove(slot);
            self.cells[new].push(v);
        }
    }

    /// Collects into `out` every node `u != v` with
    /// `dist(u, v) <= radius`, ascending. Only the 3 × 3 cell
    /// neighborhood of `v` is inspected.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn within_radius(&self, v: Node, out: &mut Vec<Node>) {
        out.clear();
        let (x, y) = self.pos[v as usize];
        let r2 = self.radius * self.radius;
        let (cx, cy) = self.cell_coords((x, y));
        for gy in cy.saturating_sub(1)..=(cy + 1).min(self.cols - 1) {
            for gx in cx.saturating_sub(1)..=(cx + 1).min(self.cols - 1) {
                for &u in &self.cells[gy * self.cols + gx] {
                    if u == v {
                        continue;
                    }
                    let (ux, uy) = self.pos[u as usize];
                    let (dx, dy) = (ux - x, uy - y);
                    if dx * dx + dy * dy <= r2 {
                        out.push(u);
                    }
                }
            }
        }
        out.sort_unstable();
    }

    /// Every proximity edge `(u, v)` with `u < v`, in ascending order —
    /// the edge set of the geometric graph at the current positions.
    pub fn proximity_edges(&self) -> Vec<(Node, Node)> {
        let mut edges = Vec::new();
        let mut near = Vec::new();
        for v in 0..self.pos.len() as Node {
            self.within_radius(v, &mut near);
            for &u in &near {
                if v < u {
                    edges.push((v, u));
                }
            }
        }
        edges
    }

    fn cell_coords(&self, (x, y): (f64, f64)) -> (usize, usize) {
        let clamp = |t: f64| ((t * self.cols as f64) as usize).min(self.cols - 1);
        (clamp(x), clamp(y))
    }

    fn cell_index(&self, p: (f64, f64)) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.cols + cx
    }
}

impl Drop for GridIndex {
    fn drop(&mut self) {
        arena::give_cells(std::mem::take(&mut self.cells));
        arena::give_positions(std::mem::take(&mut self.pos));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference for the radius query.
    fn brute(pos: &[(f64, f64)], v: usize, r: f64) -> Vec<Node> {
        let (x, y) = pos[v];
        let mut out: Vec<Node> = (0..pos.len())
            .filter(|&u| {
                let (ux, uy) = pos[u];
                u != v && (ux - x).powi(2) + (uy - y).powi(2) <= r * r
            })
            .map(|u| u as Node)
            .collect();
        out.sort_unstable();
        out
    }

    fn scatter(n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = rumor_sim::rng::Xoshiro256PlusPlus::seed_from(seed);
        (0..n).map(|_| (rng.f64_unit(), rng.f64_unit())).collect()
    }

    #[test]
    fn radius_query_matches_brute_force() {
        for (n, r) in [(40, 0.25), (120, 0.1), (7, 0.9), (64, 0.03)] {
            let pos = scatter(n, n as u64 ^ 0x9E37);
            let grid = GridIndex::new(pos.clone(), r);
            let mut near = Vec::new();
            for v in 0..n {
                grid.within_radius(v as Node, &mut near);
                assert_eq!(near, brute(&pos, v, r), "n {n} r {r} node {v}");
            }
        }
    }

    #[test]
    fn moves_rebucket_and_queries_follow() {
        let mut pos = scatter(50, 3);
        let mut grid = GridIndex::new(pos.clone(), 0.2);
        let mut rng = rumor_sim::rng::Xoshiro256PlusPlus::seed_from(9);
        let mut near = Vec::new();
        for step in 0..200 {
            let v = rng.range_usize(50);
            let (x, y) = (rng.f64_unit(), rng.f64_unit());
            grid.move_to(v as Node, x, y);
            pos[v] = (x, y);
            assert_eq!(grid.position(v as Node), (x, y));
            let probe = rng.range_usize(50);
            grid.within_radius(probe as Node, &mut near);
            assert_eq!(near, brute(&pos, probe, 0.2), "step {step}");
        }
    }

    #[test]
    fn proximity_edges_are_symmetric_and_sorted() {
        let pos = scatter(60, 5);
        let grid = GridIndex::new(pos.clone(), 0.18);
        let edges = grid.proximity_edges();
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "unsorted edge list");
        for &(u, v) in &edges {
            assert!(u < v);
            assert!(brute(&pos, u as usize, 0.18).contains(&v));
        }
        // Every brute-force pair appears.
        let count: usize = (0..60).map(|v| brute(&pos, v, 0.18).len()).sum();
        assert_eq!(edges.len() * 2, count);
    }

    #[test]
    fn tiny_radius_caps_cell_count() {
        let grid = GridIndex::new(scatter(16, 7), 1e-6);
        // sqrt(16) = 4 cells per side despite the microscopic radius.
        assert_eq!(grid.cols, 4);
        let mut near = Vec::new();
        grid.within_radius(0, &mut near);
        assert!(near.is_empty());
    }

    #[test]
    fn rebuilt_index_recycles_its_cell_table() {
        let pos = scatter(32, 11);
        let first = GridIndex::new(pos.clone(), 0.2);
        let table_ptr = first.cells.as_ptr();
        let edges = first.proximity_edges();
        drop(first);
        // Next trial: same shape, same allocation, same answers.
        let second = GridIndex::new(pos, 0.2);
        assert_eq!(second.cells.as_ptr(), table_ptr, "cell table came from the pool");
        assert_eq!(second.proximity_edges(), edges);
    }

    #[test]
    #[should_panic(expected = "unit square")]
    fn rejects_positions_outside_the_square() {
        GridIndex::new(vec![(1.5, 0.0)], 0.1);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn rejects_nonpositive_radius() {
        GridIndex::new(vec![(0.5, 0.5)], 0.0);
    }
}
