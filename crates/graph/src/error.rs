//! Error type for graph construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced when building or parsing a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referred to a node ≥ the declared node count.
    NodeOutOfRange {
        /// The offending node index.
        node: u64,
        /// The declared number of nodes.
        node_count: u64,
    },
    /// An edge connected a node to itself.
    SelfLoop {
        /// The node with the self-loop.
        node: u64,
    },
    /// The graph had zero nodes.
    EmptyGraph,
    /// An edge-list line could not be parsed.
    ParseEdgeList {
        /// 1-based line number of the malformed line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range for graph with {node_count} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::EmptyGraph => write!(f, "graph must have at least one node"),
            GraphError::ParseEdgeList { line, message } => {
                write!(f, "edge list parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, node_count: 5 };
        assert_eq!(e.to_string(), "node 9 out of range for graph with 5 nodes");
        let e = GraphError::SelfLoop { node: 3 };
        assert_eq!(e.to_string(), "self-loop at node 3");
        let e = GraphError::EmptyGraph;
        assert!(e.to_string().contains("at least one node"));
        let e = GraphError::ParseEdgeList { line: 2, message: "bad token".into() };
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<GraphError>();
    }
}
