//! Compressed sparse row (CSR) graph representation.

use std::sync::Arc;

use rumor_sim::rng::Xoshiro256PlusPlus;

/// A node index. Graphs in this workspace are bounded by `u32`, which keeps
/// adjacency arrays half the size of `usize` indices and comfortably covers
/// every experiment (n ≤ a few million).
pub type Node = u32;

/// An immutable, undirected, simple graph in CSR form.
///
/// Invariants (established by [`crate::GraphBuilder`] and preserved by
/// immutability):
///
/// * no self-loops, no parallel edges;
/// * adjacency lists are sorted ascending;
/// * symmetry: `w ∈ N(v)` ⟺ `v ∈ N(w)`.
///
/// # Example
///
/// ```
/// use rumor_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build()?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.has_edge(0, 1) && !g.has_edge(0, 2));
/// # Ok::<(), rumor_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for node `v`.
    ///
    /// Shared (`Arc`) so that cloning a graph — and seeding a
    /// [`crate::dynamic::MutableGraph`] base from one — is O(1): the
    /// arrays are immutable for the lifetime of the graph, so every
    /// consumer can alias them safely.
    offsets: Arc<[usize]>,
    /// Concatenated, per-node-sorted adjacency lists (length `2·edge_count`).
    neighbors: Arc<[Node]>,
}

impl Graph {
    /// Assembles a graph from raw CSR arrays.
    ///
    /// Callers are expected to uphold the documented invariants; this is
    /// `pub(crate)` so all public construction funnels through the builder
    /// or the generators.
    pub(crate) fn from_csr(offsets: Vec<usize>, neighbors: Vec<Node>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        Self { offsets: Arc::from(offsets), neighbors: Arc::from(neighbors) }
    }

    /// The shared offset array (O(1) clone of the `Arc`).
    pub(crate) fn offsets_arc(&self) -> Arc<[usize]> {
        Arc::clone(&self.offsets)
    }

    /// The shared adjacency array (O(1) clone of the `Arc`).
    pub(crate) fn neighbors_arc(&self) -> Arc<[Node]> {
        Arc::clone(&self.neighbors)
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: Node) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted adjacency list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: Node) -> &[Node] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// A uniformly random neighbor of `v`.
    ///
    /// This is the primitive that every protocol in the paper is built on:
    /// “node `v` contacts a uniformly random neighbor”.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or isolated (degree 0) — protocols
    /// require minimum degree 1.
    #[inline]
    pub fn random_neighbor(&self, v: Node, rng: &mut Xoshiro256PlusPlus) -> Node {
        let nbrs = self.neighbors(v);
        assert!(!nbrs.is_empty(), "node {v} is isolated; protocols need degree >= 1");
        nbrs[rng.range_usize(nbrs.len())]
    }

    /// Whether the undirected edge `{u, v}` exists (binary search).
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node indices `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        0..self.node_count() as Node
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> Edges<'_> {
        Edges { graph: self, u: 0, idx: 0 }
    }

    /// Minimum degree over all nodes.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no nodes.
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).min().expect("graph has nodes")
    }

    /// Maximum degree over all nodes.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no nodes.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().expect("graph has nodes")
    }

    /// Average degree `2m/n`.
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.edge_count() as f64 / self.node_count() as f64
    }

    /// If every node has the same degree `d`, returns `Some(d)`.
    ///
    /// Corollary 3 of the paper applies exactly to such graphs.
    pub fn regular_degree(&self) -> Option<usize> {
        let d = self.degree(0);
        if self.nodes().all(|v| self.degree(v) == d) {
            Some(d)
        } else {
            None
        }
    }

    /// Whether any node has degree 0 (such graphs cannot run the
    /// protocols, since every node must have a neighbor to contact).
    pub fn has_isolated_nodes(&self) -> bool {
        self.nodes().any(|v| self.degree(v) == 0)
    }

    /// Sum over nodes `v` of `π(v) = (1/n) Σ_{w ∈ Γ(v)} 1/deg(w)` — the
    /// probability that `v` is *contacted* in a uniformly random step of
    /// the asynchronous protocol. Section 5 of the paper uses
    /// `Σ_v π(v) = 1`; exposed for the block-accounting experiment.
    pub fn contact_probability(&self, v: Node) -> f64 {
        let n = self.node_count() as f64;
        self.neighbors(v).iter().map(|&w| 1.0 / self.degree(w) as f64).sum::<f64>() / n
    }
}

/// Iterator over undirected edges; see [`Graph::edges`].
#[derive(Debug)]
pub struct Edges<'a> {
    graph: &'a Graph,
    u: Node,
    idx: usize,
}

impl Iterator for Edges<'_> {
    type Item = (Node, Node);

    fn next(&mut self) -> Option<(Node, Node)> {
        let n = self.graph.node_count() as Node;
        while self.u < n {
            let nbrs = self.graph.neighbors(self.u);
            while self.idx < nbrs.len() {
                let v = nbrs[self.idx];
                self.idx += 1;
                if self.u < v {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.idx = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.min_degree(), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.regular_degree(), Some(2));
        assert!(!g.has_isolated_nodes());
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = triangle();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        for (u, v) in g.edges() {
            assert!(g.has_edge(u, v));
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<(Node, Node)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn random_neighbor_is_uniform() {
        let g = triangle();
        let mut rng = Xoshiro256PlusPlus::seed_from(11);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[g.random_neighbor(0, &mut rng) as usize] += 1;
        }
        assert_eq!(counts[0], 0, "never returns the node itself");
        for &c in &counts[1..] {
            assert!((c as f64 - 15_000.0).abs() < 800.0, "biased: {counts:?}");
        }
    }

    #[test]
    fn irregular_graph_detected() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        assert_eq!(g.regular_degree(), None);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn isolated_node_detected() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert!(g.has_isolated_nodes());
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn random_neighbor_panics_on_isolated() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let mut b2 = GraphBuilder::new(3);
        b2.add_edge(0, 1);
        drop(b);
        let g = b2.build().unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from(1);
        g.random_neighbor(2, &mut rng);
    }

    #[test]
    fn contact_probabilities_sum_to_one() {
        let g = triangle();
        let total: f64 = g.nodes().map(|v| g.contact_probability(v)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Also on an irregular graph (star).
        let g = crate::generators::star(5);
        let total: f64 = g.nodes().map(|v| g.contact_probability(v)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
