//! Thread-local scratch pool: recycled buffers for the dynamic-graph
//! hot path.
//!
//! Dynamic-network experiments run thousands of short trials, and each
//! trial used to re-allocate the same working set — adjacency overlays,
//! compaction staging, [`GridIndex`](crate::geometry::GridIndex) cells,
//! radius-query scratch. This module keeps one free list per buffer
//! shape in a thread-local pool; `take_*` hands out a cleared buffer
//! (reusing capacity when one is available) and `give_*` returns it.
//! After the first trial warms the pool, repeated trials allocate
//! ~nothing.
//!
//! The pool is purely an allocation cache: buffers carry no state
//! between uses (every `take_*` returns an empty buffer), so pooling is
//! invisible to simulation semantics and replay. Buffers may be taken
//! on one thread and given back on another (each thread simply grows
//! its own pool); the free lists are capped so a burst of large buffers
//! cannot pin unbounded memory.

use std::cell::RefCell;

use crate::csr::Node;

/// Free-list cap per buffer shape: enough for every live simulation
/// object a thread realistically holds, small enough that the pool
/// never pins more than a bounded multiple of one trial's working set.
const MAX_POOLED: usize = 64;

#[derive(Default)]
struct Pool {
    nodes: Vec<Vec<Node>>,
    offsets: Vec<Vec<usize>>,
    flags: Vec<Vec<bool>>,
    pairs: Vec<Vec<(Node, Node)>>,
    positions: Vec<Vec<(f64, f64)>>,
    cells: Vec<Vec<Vec<Node>>>,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

macro_rules! pool_pair {
    ($take:ident, $give:ident, $field:ident, $ty:ty, $takedoc:expr, $givedoc:expr) => {
        #[doc = $takedoc]
        pub fn $take() -> $ty {
            POOL.with(|p| p.borrow_mut().$field.pop()).unwrap_or_default()
        }

        #[doc = $givedoc]
        pub fn $give(mut buf: $ty) {
            buf.clear();
            POOL.with(|p| {
                let mut p = p.borrow_mut();
                if p.$field.len() < MAX_POOLED {
                    p.$field.push(buf);
                }
            });
        }
    };
}

pool_pair!(
    take_nodes,
    give_nodes,
    nodes,
    Vec<Node>,
    "An empty node buffer from the pool (or a fresh one).",
    "Returns a node buffer to the pool."
);
pool_pair!(
    take_offsets,
    give_offsets,
    offsets,
    Vec<usize>,
    "An empty offset buffer from the pool (or a fresh one).",
    "Returns an offset buffer to the pool."
);
pool_pair!(
    take_flags,
    give_flags,
    flags,
    Vec<bool>,
    "An empty flag buffer from the pool (or a fresh one).",
    "Returns a flag buffer to the pool."
);
pool_pair!(
    take_pairs,
    give_pairs,
    pairs,
    Vec<(Node, Node)>,
    "An empty node-pair buffer from the pool (or a fresh one).",
    "Returns a node-pair buffer to the pool."
);
pool_pair!(
    take_positions,
    give_positions,
    positions,
    Vec<(f64, f64)>,
    "An empty position buffer from the pool (or a fresh one).",
    "Returns a position buffer to the pool."
);

/// A cell array from the pool. Unlike the scalar buffers, the inner
/// vectors are retained (cleared, with capacity): the taker resizes the
/// table to the shape it needs and reuses the per-cell allocations.
pub fn take_cells() -> Vec<Vec<Node>> {
    POOL.with(|p| p.borrow_mut().cells.pop()).unwrap_or_default()
}

/// Returns a cell array to the pool. Inner vectors are cleared but
/// **kept** (with their capacity), so the next taker reuses both the
/// outer table and the per-cell allocations.
pub fn give_cells(mut cells: Vec<Vec<Node>>) {
    for cell in &mut cells {
        cell.clear();
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.cells.len() < MAX_POOLED {
            p.cells.push(cells);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_capacity() {
        let mut a = take_nodes();
        a.extend(0..1000);
        let cap = a.capacity();
        let ptr = a.as_ptr();
        give_nodes(a);
        let b = take_nodes();
        assert!(b.is_empty(), "pooled buffers come back empty");
        assert_eq!(b.capacity(), cap);
        assert_eq!(b.as_ptr(), ptr, "same allocation cycles through the pool");
    }

    #[test]
    fn cells_keep_inner_capacity() {
        let mut cells = take_cells();
        cells.resize_with(4, Vec::new);
        cells[2].extend([1, 2, 3]);
        let inner_cap = cells[2].capacity();
        give_cells(cells);
        let back = take_cells();
        assert_eq!(back.len(), 4, "outer table survives");
        assert!(back[2].is_empty());
        assert_eq!(back[2].capacity(), inner_cap, "inner capacity survives");
    }

    #[test]
    fn pool_is_bounded() {
        for _ in 0..(MAX_POOLED + 16) {
            give_flags(vec![true; 8]);
        }
        let pooled = POOL.with(|p| p.borrow().flags.len());
        assert!(pooled <= MAX_POOLED);
        // Drain so other tests on this thread start from a known state.
        while POOL.with(|p| p.borrow_mut().flags.pop()).is_some() {}
    }
}
