//! Graph substrate for rumor spreading.
//!
//! Provides a compact CSR graph representation ([`Graph`]), a validating
//! [`GraphBuilder`], generators for every graph family used by the
//! PODC 2016 paper (see [`generators`]), structural properties
//! ([`props`]), plain-text edge-list I/O ([`io`]), a mutable
//! adjacency adapter for temporal-graph simulation ([`dynamic`]), shard
//! partitions for parallel simulation engines ([`partition`]), a grid
//! spatial index for geometric mobility models ([`geometry`]), and a
//! thread-local scratch pool that recycles per-trial buffers
//! ([`arena`]).
//!
//! The paper's protocols only ever ask two things of a graph: *“what is
//! `deg(v)`?”* and *“give me a uniformly random neighbor of `v`”*. CSR
//! adjacency answers both in O(1) with cache-friendly layout, which is why
//! this crate does not pull in a general-purpose graph library.
//!
//! # Example
//!
//! ```
//! use rumor_graph::{generators, props};
//! use rumor_sim::rng::Xoshiro256PlusPlus;
//!
//! let g = generators::hypercube(4);
//! assert_eq!(g.node_count(), 16);
//! assert_eq!(g.degree(0), 4);
//! assert!(props::is_connected(&g));
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from(1);
//! let w = g.random_neighbor(3, &mut rng);
//! assert!(g.neighbors(3).contains(&w));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
mod builder;
mod csr;
pub mod dynamic;
mod error;
pub mod generators;
pub mod geometry;
pub mod io;
pub mod ops;
pub mod partition;
pub mod props;

pub use builder::GraphBuilder;
pub use csr::{Graph, Node};
pub use error::GraphError;
pub use partition::{Partition, ShardId};
