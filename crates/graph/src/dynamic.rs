//! Mutable adjacency for dynamic-network simulation: flat CSR base plus
//! a copy-on-write delta overlay.
//!
//! The CSR [`Graph`](crate::Graph) is immutable by design; temporal-graph
//! engines need edges that appear and disappear while a protocol runs.
//! [`MutableGraph`] bridges the two worlds without abandoning flat
//! memory: it aliases the CSR arrays of its starting snapshot (O(1)
//! construction, no per-trial deep copy) and gives a node its own
//! **overlay row** the first time churn touches it — a copy of its base
//! row that later edits mutate in place. Overlay rows live in one flat
//! slab (a single `Vec<Node>` with per-row bounds), so list accesses
//! stay inside one contiguous buffer instead of chasing per-node heap
//! cells. Untouched nodes read the base arrays directly; touched nodes
//! read their slab row. Either way the view is one plain sorted slice,
//! so
//! [`degree`](MutableGraph::degree), [`neighbors`](MutableGraph::neighbors),
//! and [`random_neighbor`](MutableGraph::random_neighbor) — one
//! `range_usize(deg)` draw indexing the k-th sorted neighbor — consume
//! the RNG **and** pick the neighbor exactly like
//! [`Graph::random_neighbor`] on an equal topology. That is the replay
//! contract every golden test rests on.
//!
//! Keeping every list sorted costs a binary search plus a memmove per
//! mutation — the right trade only when the *draw order* is pinned (the
//! v1 replay contract indexes the k-th **sorted** neighbor). Engines on
//! the v2 RNG contract mint their own goldens, so they opt into
//! **order-relaxed adjacency** ([`relax_neighbor_order`]
//! (MutableGraph::relax_neighbor_order)): lists keep the same *set* of
//! neighbors but drop the ordering invariant, turning every mutation
//! into a short scan plus `push`/`swap_remove` — no memmove, no binary
//! search. Still fully deterministic (the order is a pure function of
//! the mutation history), just a different — and cheaper — pinned
//! stream.
//!
//! Once the overlay outgrows a threshold the graph **compacts**: the
//! current view is flushed into a fresh flat base (staged in pooled
//! buffers from [`crate::arena`]) and the overlay empties. Compaction
//! is a logical no-op — views, draws, and replay are unaffected; only
//! the layout changes. All scratch (overlay lists, index arrays,
//! compaction staging) cycles through the thread-local arena, so
//! repeated trials allocate ~nothing after warm-up.

use std::sync::Arc;

use rumor_sim::rng::Xoshiro256PlusPlus;

use crate::arena;
use crate::builder::GraphBuilder;
use crate::csr::{Graph, Node};

/// Bounds of one overlay row inside the flat slab: the row occupies
/// `slab[start..start + cap]` with the live prefix `[start..start +
/// len]`. Rows that outgrow their capacity relocate to the slab's end
/// with doubled headroom (the old region becomes waste, reclaimed by
/// the next compaction) — `Vec` growth, flattened into one allocation
/// shared by every row so list accesses stay inside a single
/// contiguous, cache-dense buffer instead of chasing per-node heap
/// cells.
///
/// The metas themselves are indexed **by node**, with `cap == 0` as the
/// "never touched, read the base row" sentinel (a real overlay row
/// always has `cap >= 4`), so a hot-path access is one meta load and
/// one slab load — no slot indirection in between.
#[derive(Debug, Clone, Copy)]
struct RowMeta {
    start: u32,
    len: u32,
    cap: u32,
}

impl RowMeta {
    /// The untouched-node sentinel (`cap == 0`).
    const NONE: RowMeta = RowMeta { start: 0, len: 0, cap: 0 };
}

/// Default compaction threshold for a base with `base_len` adjacency
/// entries: compact once the overlay lists hold more than **twice** the
/// base (but never fuss over tiny graphs).
///
/// Overlay lists are full adjacency copies, so their total size tracks
/// the *current* adjacency of touched nodes — for churn that keeps the
/// edge count roughly stable the overlay converges to about one base
/// worth of entries and stays there, and steady state pays no
/// compaction at all (the sweep bench shows recopy cycles cost more
/// than they save). Crossing 2× the base means the graph has genuinely
/// outgrown its snapshot; re-anchoring then keeps memory at O(current
/// graph) with geometric, amortized-O(1) flushes, like `Vec` growth.
fn default_threshold(base_len: usize) -> usize {
    (base_len * 2).max(64)
}

/// The flat base arrays: either shared with the [`Graph`] the mutable
/// view was built from (zero-copy) or owned pooled buffers written by
/// compaction.
#[derive(Debug)]
enum BaseStore {
    Shared { offsets: Arc<[usize]>, neighbors: Arc<[Node]> },
    Owned { offsets: Vec<usize>, neighbors: Vec<Node> },
}

impl BaseStore {
    #[inline]
    fn slices(&self) -> (&[usize], &[Node]) {
        match self {
            BaseStore::Shared { offsets, neighbors } => (offsets, neighbors),
            BaseStore::Owned { offsets, neighbors } => (offsets, neighbors),
        }
    }

    /// A placeholder that owns nothing (used when moving the store out).
    fn hollow() -> Self {
        BaseStore::Owned { offsets: Vec::new(), neighbors: Vec::new() }
    }

    /// Returns owned buffers to the arena.
    fn recycle(self) {
        if let BaseStore::Owned { offsets, neighbors } = self {
            arena::give_offsets(offsets);
            arena::give_nodes(neighbors);
        }
    }
}

/// One effective mutation, as recorded by the change journal (see
/// [`MutableGraph::track_changes`]). Edge endpoints are canonical
/// `(min, max)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphChange {
    /// Edge `{u, v}` was inserted (`u < v`).
    EdgeAdded(Node, Node),
    /// Edge `{u, v}` was removed (`u < v`).
    EdgeRemoved(Node, Node),
    /// Node left the network (its incident-edge removals are journaled
    /// separately, before this entry).
    NodeDeactivated(Node),
    /// Node (re)joined the network.
    NodeActivated(Node),
}

/// An undirected simple graph under edit: a flat CSR base, copy-on-write
/// per-node overlay lists, and per-node activation flags.
///
/// Inactive nodes keep their identity (indices are stable) but have all
/// incident edges removed and never gain new ones until reactivated;
/// [`degree`](Self::degree) and [`neighbors`](Self::neighbors) of an
/// inactive node are guarded to report an empty adjacency no matter
/// what the underlying storage holds.
///
/// # Example
///
/// ```
/// use rumor_graph::dynamic::MutableGraph;
/// use rumor_graph::generators;
///
/// let mut net = MutableGraph::from_graph(&generators::cycle(4));
/// assert_eq!(net.edge_count(), 4);
/// assert!(net.remove_edge(0, 1));
/// assert!(!net.has_edge(0, 1));
/// assert!(net.add_edge(0, 2));
/// assert_eq!(net.neighbors(0), &[2, 3]);
/// ```
#[derive(Debug)]
pub struct MutableGraph {
    base: BaseStore,
    /// Overlay row bounds, indexed by node ([`RowMeta::NONE`] until the
    /// node's first touch). Each row holds the **full current
    /// adjacency** of its node — a copy of the base row taken on first
    /// touch, edited in place afterwards (sorted ascending unless order
    /// was relaxed).
    rows: Vec<RowMeta>,
    /// One contiguous buffer backing every overlay row.
    slab: Vec<Node>,
    /// Total entries across live overlay lists (compaction trigger).
    overlay_entries: usize,
    /// Compact once `overlay_entries` exceeds this.
    compact_threshold: usize,
    /// Whether `compact_threshold` tracks the base size automatically.
    auto_threshold: bool,
    edge_count: usize,
    active: Vec<bool>,
    active_count: usize,
    /// Change journal; appended to only while `tracking`.
    journal: Vec<GraphChange>,
    tracking: bool,
    /// `true`: adjacency lists stay sorted ascending (the v1 replay
    /// contract). `false`: order-relaxed — same sets, insertion-order
    /// lists, O(scan) mutations with no memmove.
    sorted: bool,
}

impl MutableGraph {
    /// An editable view over a CSR snapshot; every node starts active.
    ///
    /// O(n): the adjacency arrays are **shared** with `g`, not copied.
    pub fn from_graph(g: &Graph) -> Self {
        let base = BaseStore::Shared { offsets: g.offsets_arc(), neighbors: g.neighbors_arc() };
        Self::with_base(g.node_count(), base, g.edge_count())
    }

    /// An edgeless graph on `n` active nodes.
    pub fn empty(n: usize) -> Self {
        let mut offsets = arena::take_offsets();
        offsets.resize(n + 1, 0);
        Self::with_base(n, BaseStore::Owned { offsets, neighbors: arena::take_nodes() }, 0)
    }

    /// Shared construction: pooled side arrays around `base`.
    fn with_base(n: usize, base: BaseStore, edge_count: usize) -> Self {
        let mut active = arena::take_flags();
        active.resize(n, true);
        let base_len = base.slices().1.len();
        Self {
            base,
            rows: vec![RowMeta::NONE; n],
            slab: arena::take_nodes(),
            overlay_entries: 0,
            compact_threshold: default_threshold(base_len),
            auto_threshold: true,
            edge_count,
            active,
            active_count: n,
            journal: Vec::new(),
            tracking: false,
            sorted: true,
        }
    }

    /// Drops the sorted-adjacency invariant for all *future* mutations:
    /// lists keep the same neighbor sets but are maintained by
    /// `push`/`swap_remove` instead of sorted insert/remove, making
    /// every edge mutation a short scan with no memmove.
    ///
    /// [`random_neighbor`](Self::random_neighbor) still draws uniformly
    /// (one `range_usize(deg)` index into the list), and the order —
    /// hence the draw stream — is still a pure function of the mutation
    /// history, so runs remain bit-for-bit reproducible. But the stream
    /// *differs* from sorted mode's, so this is only for engines whose
    /// goldens were minted in relaxed mode (the v2 RNG contract); the
    /// v1 replay contract requires the default sorted mode.
    pub fn relax_neighbor_order(&mut self) {
        self.sorted = false;
    }

    /// Number of nodes (stable under all mutations).
    pub fn node_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of undirected edges currently present.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Current degree of `v` (0 for an inactive node), in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: Node) -> usize {
        self.neighbors(v).len()
    }

    /// The current neighbors of `v` (sorted ascending unless
    /// [`relax_neighbor_order`](Self::relax_neighbor_order) was called):
    /// the node's overlay list if churn has touched it, its row of the
    /// flat base otherwise. Empty for an inactive node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: Node) -> &[Node] {
        let vi = v as usize;
        let m = self.rows[vi];
        if !self.active[vi] {
            &[]
        } else if m.cap == 0 {
            let (off, nb) = self.base.slices();
            &nb[off[vi]..off[vi + 1]]
        } else {
            &self.slab[m.start as usize..(m.start + m.len) as usize]
        }
    }

    /// A uniformly random current neighbor of `v`, drawn exactly like
    /// [`Graph::random_neighbor`]: one `range_usize(deg)` call indexing
    /// the k-th stored neighbor (the k-th *sorted* neighbor unless
    /// order was relaxed), O(1) whether or not `v` has an overlay.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or currently isolated.
    #[inline]
    pub fn random_neighbor(&self, v: Node, rng: &mut Xoshiro256PlusPlus) -> Node {
        let nbrs = self.neighbors(v);
        assert!(!nbrs.is_empty(), "node {v} is isolated; protocols need degree >= 1");
        nbrs[rng.range_usize(nbrs.len())]
    }

    /// Whether the undirected edge `{u, v}` is currently present.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        let nbrs = self.neighbors(u);
        if self.sorted {
            nbrs.binary_search(&v).is_ok()
        } else {
            nbrs.contains(&v)
        }
    }

    /// Inserts the undirected edge `{u, v}`; returns `false` if it was
    /// already present (the graph is unchanged).
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, or inactive
    /// endpoints — topology models must not wire up departed nodes.
    pub fn add_edge(&mut self, u: Node, v: Node) -> bool {
        assert!(u != v, "self-loop at node {u}");
        assert!(
            (u as usize) < self.node_count() && (v as usize) < self.node_count(),
            "edge ({u}, {v}) out of range for {} nodes",
            self.node_count()
        );
        assert!(
            self.active[u as usize] && self.active[v as usize],
            "edge ({u}, {v}) touches an inactive node"
        );
        let su = self.touch(u);
        if self.sorted {
            match self.row(su).binary_search(&v) {
                Ok(_) => return false,
                Err(i) => self.row_insert(su, i, v),
            }
            let sv = self.touch(v);
            let j = self.row(sv).binary_search(&u).expect_err("adjacency is symmetric");
            self.row_insert(sv, j, u);
        } else {
            if self.row(su).contains(&v) {
                return false;
            }
            self.row_push(su, v);
            let sv = self.touch(v);
            self.row_push(sv, u);
        }
        self.overlay_entries += 2;
        self.edge_count += 1;
        if self.tracking {
            self.journal.push(GraphChange::EdgeAdded(u.min(v), u.max(v)));
        }
        self.maybe_compact();
        true
    }

    /// Inserts the undirected edge `{u, v}` the caller has already
    /// established to be absent, skipping the presence probe of
    /// [`add_edge`](Self::add_edge) — the fast path for models that
    /// track edge presence themselves (edge-Markov's swap partition).
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, or inactive
    /// endpoints; debug builds also panic if the edge was present
    /// (release builds would corrupt the adjacency — callers carry the
    /// proof of absence).
    pub fn add_edge_unchecked(&mut self, u: Node, v: Node) {
        assert!(u != v, "self-loop at node {u}");
        assert!(
            (u as usize) < self.node_count() && (v as usize) < self.node_count(),
            "edge ({u}, {v}) out of range for {} nodes",
            self.node_count()
        );
        assert!(
            self.active[u as usize] && self.active[v as usize],
            "edge ({u}, {v}) touches an inactive node"
        );
        let su = self.touch(u);
        if self.sorted {
            let i =
                self.row(su).binary_search(&v).expect_err("add_edge_unchecked on a present edge");
            self.row_insert(su, i, v);
            let sv = self.touch(v);
            let j = self.row(sv).binary_search(&u).expect_err("adjacency is symmetric");
            self.row_insert(sv, j, u);
        } else {
            debug_assert!(!self.row(su).contains(&v), "add_edge_unchecked on a present edge");
            self.row_push(su, v);
            let sv = self.touch(v);
            self.row_push(sv, u);
        }
        self.overlay_entries += 2;
        self.edge_count += 1;
        if self.tracking {
            self.journal.push(GraphChange::EdgeAdded(u.min(v), u.max(v)));
        }
        self.maybe_compact();
    }

    /// Slides the edge `{anchor, from}` to `{anchor, to}` — the
    /// random-walk step — in one fused operation: if `{anchor, to}` is
    /// already present nothing changes and `false` is returned (the
    /// walk's occupied-pair rejection); otherwise `from` is rewritten to
    /// `to` in `anchor`'s list in place, the reverse entries are fixed
    /// up, and `true` is returned. One scan of `anchor`'s list serves as
    /// both the rejection probe and the position lookup, where the
    /// equivalent `has_edge` + `remove_edge` + `add_edge` sequence scans
    /// it three times.
    ///
    /// # Panics
    ///
    /// Panics if `to == anchor` or `to == from`, any node is out of
    /// range, `to` is inactive, or the edge `{anchor, from}` is absent.
    pub fn slide_edge(&mut self, anchor: Node, from: Node, to: Node) -> bool {
        assert!(to != anchor && to != from, "slide target {to} collides with the edge");
        assert!(
            (anchor as usize) < self.node_count()
                && (from as usize) < self.node_count()
                && (to as usize) < self.node_count(),
            "slide ({anchor}, {from} -> {to}) out of range for {} nodes",
            self.node_count()
        );
        assert!(self.active[to as usize], "slide target {to} is inactive");
        let sa = self.touch(anchor);
        if self.sorted {
            if self.row(sa).binary_search(&to).is_ok() {
                return false;
            }
            let i = self.row(sa).binary_search(&from).expect("slide of an absent edge");
            self.row_remove(sa, i);
            let j = self.row(sa).binary_search(&to).expect_err("checked absent above");
            self.row_insert(sa, j, to);
            let sf = self.touch(from);
            let k = self.row(sf).binary_search(&anchor).expect("adjacency is symmetric");
            self.row_remove(sf, k);
            let st = self.touch(to);
            let m = self.row(st).binary_search(&anchor).expect_err("adjacency is symmetric");
            self.row_insert(st, m, anchor);
        } else {
            let m = self.rows[sa];
            let row = &mut self.slab[m.start as usize..(m.start + m.len) as usize];
            let mut pos_from = usize::MAX;
            for (k, &w) in row.iter().enumerate() {
                if w == to {
                    return false;
                }
                if w == from {
                    pos_from = k;
                }
            }
            assert!(pos_from != usize::MAX, "slide of an absent edge");
            row[pos_from] = to;
            let sf = self.touch(from);
            assert!(self.row_find_swap_remove(sf, anchor), "adjacency is symmetric");
            let st = self.touch(to);
            self.row_push(st, anchor);
        }
        if self.tracking {
            self.journal.push(GraphChange::EdgeRemoved(anchor.min(from), anchor.max(from)));
            self.journal.push(GraphChange::EdgeAdded(anchor.min(to), anchor.max(to)));
        }
        true
    }

    /// Removes the undirected edge `{u, v}`; returns `false` if it was
    /// not present.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn remove_edge(&mut self, u: Node, v: Node) -> bool {
        assert!(
            (u as usize) < self.node_count() && (v as usize) < self.node_count(),
            "edge ({u}, {v}) out of range for {} nodes",
            self.node_count()
        );
        if !self.active[u as usize] {
            return false;
        }
        let su = self.touch(u);
        if self.sorted {
            match self.row(su).binary_search(&v) {
                Err(_) => return false,
                Ok(i) => self.row_remove(su, i),
            };
            let sv = self.touch(v);
            let j = self.row(sv).binary_search(&u).expect("adjacency is symmetric");
            self.row_remove(sv, j);
        } else {
            if !self.row_find_swap_remove(su, v) {
                return false;
            }
            let sv = self.touch(v);
            assert!(self.row_find_swap_remove(sv, u), "adjacency is symmetric");
        }
        self.overlay_entries -= 2;
        self.edge_count -= 1;
        if self.tracking {
            self.journal.push(GraphChange::EdgeRemoved(u.min(v), u.max(v)));
        }
        self.maybe_compact();
        true
    }

    /// Whether `v` currently participates in the network.
    #[inline]
    pub fn is_active(&self, v: Node) -> bool {
        self.active[v as usize]
    }

    /// Number of active nodes.
    pub fn active_count(&self) -> usize {
        self.active_count
    }

    /// Deactivates `v`, removing all its incident edges; returns the
    /// number of edges removed. No-op (returning 0) if already inactive.
    pub fn deactivate(&mut self, v: Node) -> usize {
        if !self.active[v as usize] {
            return 0;
        }
        let mut nbrs = arena::take_nodes();
        nbrs.extend_from_slice(self.neighbors(v));
        for &w in &nbrs {
            let sw = self.touch(w);
            if self.sorted {
                let j = self.row(sw).binary_search(&v).expect("adjacency is symmetric");
                self.row_remove(sw, j);
            } else {
                assert!(self.row_find_swap_remove(sw, v), "adjacency is symmetric");
            }
            if self.tracking {
                self.journal.push(GraphChange::EdgeRemoved(v.min(w), v.max(w)));
            }
        }
        let stripped = nbrs.len();
        arena::give_nodes(nbrs);
        let sv = self.touch(v);
        self.row_clear(sv);
        self.overlay_entries -= 2 * stripped;
        self.edge_count -= stripped;
        self.active[v as usize] = false;
        self.active_count -= 1;
        if self.tracking {
            self.journal.push(GraphChange::NodeDeactivated(v));
        }
        self.maybe_compact();
        stripped
    }

    /// Reactivates `v` (with no edges; callers attach as their model
    /// dictates). No-op if already active.
    pub fn activate(&mut self, v: Node) {
        if !self.active[v as usize] {
            self.active[v as usize] = true;
            self.active_count += 1;
            if self.tracking {
                self.journal.push(GraphChange::NodeActivated(v));
            }
        }
    }

    /// Replaces the whole edge set with the edges of `snapshot`, keeping
    /// activation flags: edges touching inactive nodes are dropped.
    ///
    /// With every node active this is O(n): the snapshot's CSR arrays
    /// are adopted as the new shared base and the overlay empties.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot` has a different node count.
    pub fn replace_edges_with(&mut self, snapshot: &Graph) {
        let n = self.node_count();
        assert_eq!(snapshot.node_count(), n, "snapshot node count must match");
        if self.tracking {
            self.journal_replace_diff(snapshot);
        }
        self.clear_overlay();
        let old = std::mem::replace(&mut self.base, BaseStore::hollow());
        old.recycle();
        if self.active_count == n {
            self.base = BaseStore::Shared {
                offsets: snapshot.offsets_arc(),
                neighbors: snapshot.neighbors_arc(),
            };
            self.edge_count = snapshot.edge_count();
        } else {
            let mut offsets = arena::take_offsets();
            let mut neighbors = arena::take_nodes();
            offsets.push(0);
            for v in snapshot.nodes() {
                if self.active[v as usize] {
                    neighbors
                        .extend(snapshot.neighbors(v).iter().filter(|&&w| self.active[w as usize]));
                }
                offsets.push(neighbors.len());
            }
            self.edge_count = neighbors.len() / 2;
            self.base = BaseStore::Owned { offsets, neighbors };
        }
        if self.auto_threshold {
            self.compact_threshold = default_threshold(self.base.slices().1.len());
        }
    }

    /// Freezes the current topology into an immutable CSR [`Graph`]
    /// (inactive nodes appear as isolated).
    pub fn to_graph(&self) -> Graph {
        let mut b = GraphBuilder::with_edge_capacity(self.node_count(), self.edge_count);
        for v in 0..self.node_count() as Node {
            for &w in self.neighbors(v) {
                if v < w {
                    b.add_edge(v, w);
                }
            }
        }
        b.build().expect("mutable graph upholds CSR invariants")
    }

    /// Overrides the compaction threshold: the overlay is flushed into a
    /// fresh flat base whenever its total entry count exceeds `entries`.
    ///
    /// Compaction is logically invisible (views, draws, and replay are
    /// unaffected), so this is purely a performance knob — exposed for
    /// benchmarks sweeping the compaction policy. `usize::MAX` disables
    /// compaction; `0` compacts after every mutation. The default
    /// tracks the base size (twice the adjacency array).
    pub fn set_compaction_threshold(&mut self, entries: usize) {
        self.compact_threshold = entries;
        self.auto_threshold = false;
        self.maybe_compact();
    }

    /// Starts (`true`) or stops (`false`) journaling effective changes;
    /// starting clears any previous journal.
    ///
    /// While tracking, every effective mutation appends a
    /// [`GraphChange`] — no-op calls (duplicate insert, absent removal,
    /// repeated toggles) record nothing, and compaction records nothing
    /// (it changes layout, not topology). The trace recorder uses this
    /// to diff an event in O(changes) instead of rescanning adjacency.
    pub fn track_changes(&mut self, on: bool) {
        self.journal.clear();
        self.tracking = on;
    }

    /// The changes journaled since the last
    /// [`clear_changes`](Self::clear_changes) (empty when tracking is
    /// off).
    pub fn changes(&self) -> &[GraphChange] {
        &self.journal
    }

    /// Empties the change journal (tracking stays on).
    pub fn clear_changes(&mut self) {
        self.journal.clear();
    }

    // ---- internals ----------------------------------------------------

    /// The overlay row index of `v` (its node index), copying the base
    /// row into the slab on first touch. Row contents are then read
    /// through [`row`](Self::row) and edited through the `row_*`
    /// primitives — all index-addressed, so interleaved touches (which
    /// may relocate rows inside the slab) never invalidate a held
    /// index.
    #[inline]
    fn touch(&mut self, v: Node) -> usize {
        let vi = v as usize;
        if self.rows[vi].cap != 0 {
            vi
        } else {
            self.copy_row_to_overlay(v)
        }
    }

    /// First-touch path of [`touch`](Self::touch): appends a slab row
    /// holding `v`'s current adjacency with growth headroom.
    fn copy_row_to_overlay(&mut self, v: Node) -> usize {
        let vi = v as usize;
        let start = self.slab.len();
        let (off, nb) = self.base.slices();
        let row: &[Node] = if self.active[vi] { &nb[off[vi]..off[vi + 1]] } else { &[] };
        let len = row.len();
        // ~1.25x headroom: degree-stable churn (the common case) almost
        // never relocates, while the slab stays dense enough that the
        // hot rows share cache lines. Relocation doubles, so outliers
        // converge in O(log) moves anyway.
        let cap = (len + (len >> 2) + 2).max(4);
        assert!(start + cap <= u32::MAX as usize, "overlay slab exceeds u32 indexing");
        self.slab.extend_from_slice(row);
        self.slab.resize(start + cap, 0);
        self.rows[vi] = RowMeta { start: start as u32, len: len as u32, cap: cap as u32 };
        self.overlay_entries += len;
        vi
    }

    /// The live entries of overlay row `idx`.
    #[inline]
    fn row(&self, idx: usize) -> &[Node] {
        let m = self.rows[idx];
        &self.slab[m.start as usize..(m.start + m.len) as usize]
    }

    /// Relocates row `idx` to the slab's end with doubled capacity (the
    /// old region becomes waste until the next compaction).
    fn grow_row(&mut self, idx: usize) {
        let m = self.rows[idx];
        let new_cap = (2 * m.cap).max(4) as usize;
        let start = self.slab.len();
        assert!(start + new_cap <= u32::MAX as usize, "overlay slab exceeds u32 indexing");
        self.slab.extend_from_within(m.start as usize..(m.start + m.len) as usize);
        self.slab.resize(start + new_cap, 0);
        self.rows[idx] = RowMeta { start: start as u32, len: m.len, cap: new_cap as u32 };
    }

    #[inline]
    fn row_push(&mut self, idx: usize, x: Node) {
        let mut m = self.rows[idx];
        if m.len == m.cap {
            self.grow_row(idx);
            m = self.rows[idx];
        }
        self.slab[(m.start + m.len) as usize] = x;
        self.rows[idx].len = m.len + 1;
    }

    #[inline]
    fn row_insert(&mut self, idx: usize, i: usize, x: Node) {
        if self.rows[idx].len == self.rows[idx].cap {
            self.grow_row(idx);
        }
        let m = self.rows[idx];
        let (s, l) = (m.start as usize, m.len as usize);
        self.slab.copy_within(s + i..s + l, s + i + 1);
        self.slab[s + i] = x;
        self.rows[idx].len += 1;
    }

    #[inline]
    fn row_remove(&mut self, idx: usize, i: usize) {
        let m = self.rows[idx];
        let (s, l) = (m.start as usize, m.len as usize);
        self.slab.copy_within(s + i + 1..s + l, s + i);
        self.rows[idx].len -= 1;
    }

    /// Scans row `idx` for `x` and swap-removes the first occurrence in
    /// the same pass (one slice borrow, one meta load); returns whether
    /// `x` was found. The relaxed-mode mutation workhorse.
    #[inline]
    fn row_find_swap_remove(&mut self, idx: usize, x: Node) -> bool {
        let m = self.rows[idx];
        let (s, l) = (m.start as usize, m.len as usize);
        let row = &mut self.slab[s..s + l];
        match row.iter().position(|&w| w == x) {
            Some(i) => {
                row[i] = row[l - 1];
                self.rows[idx].len -= 1;
                true
            }
            None => false,
        }
    }

    #[inline]
    fn row_clear(&mut self, idx: usize) {
        self.rows[idx].len = 0;
    }

    #[inline]
    fn maybe_compact(&mut self) {
        // Second disjunct: slab *waste* (growth-headroom pads plus
        // regions abandoned by row relocation) is also bounded, so
        // disabling it requires `set_compaction_threshold(usize::MAX)`
        // just like the live-entry bound (`saturating_mul` keeps MAX
        // meaning "never").
        if self.overlay_entries > self.compact_threshold
            || self.slab.len() > self.compact_threshold.saturating_mul(4)
        {
            self.compact();
        }
    }

    /// Flushes the current view into a fresh flat base (pooled staging)
    /// and empties the overlay. Logical no-op.
    fn compact(&mut self) {
        let n = self.node_count();
        let mut offsets = arena::take_offsets();
        let mut neighbors = arena::take_nodes();
        offsets.reserve(n + 1);
        neighbors.reserve(2 * self.edge_count);
        offsets.push(0);
        for v in 0..n as Node {
            neighbors.extend_from_slice(self.neighbors(v));
            offsets.push(neighbors.len());
        }
        debug_assert_eq!(neighbors.len(), 2 * self.edge_count);
        let old = std::mem::replace(&mut self.base, BaseStore::Owned { offsets, neighbors });
        old.recycle();
        self.clear_overlay();
        if self.auto_threshold {
            self.compact_threshold = default_threshold(self.base.slices().1.len());
        }
    }

    /// Empties the overlay; the slab keeps its allocation for reuse.
    fn clear_overlay(&mut self) {
        self.rows.fill(RowMeta::NONE);
        self.slab.clear();
        self.overlay_entries = 0;
    }

    /// Journals the edge diff `self → snapshot-filtered-by-activation`
    /// (called before [`Self::replace_edges_with`] rewrites storage).
    fn journal_replace_diff(&mut self, snapshot: &Graph) {
        let mut j = std::mem::take(&mut self.journal);
        let mut scratch = arena::take_nodes();
        for v in 0..self.node_count() as Node {
            // The merge below walks both sides in ascending order; in
            // relaxed mode the live row must be sorted into scratch
            // first (the snapshot side is CSR, always sorted).
            let old: &[Node] = if self.sorted {
                self.neighbors(v)
            } else {
                scratch.clear();
                scratch.extend_from_slice(self.neighbors(v));
                scratch.sort_unstable();
                &scratch
            };
            let mut oi = 0usize;
            let active_v = self.active[v as usize];
            let mut new_it = snapshot
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| active_v && self.active[w as usize])
                .peekable();
            loop {
                match (old.get(oi).copied(), new_it.peek().copied()) {
                    (None, None) => break,
                    (Some(a), b) if b.is_none() || a < b.expect("checked") => {
                        if v < a {
                            j.push(GraphChange::EdgeRemoved(v, a));
                        }
                        oi += 1;
                    }
                    (a, Some(b)) if a.is_none() || b < a.expect("checked") => {
                        if v < b {
                            j.push(GraphChange::EdgeAdded(v, b));
                        }
                        new_it.next();
                    }
                    _ => {
                        // Equal: edge survives the replacement.
                        oi += 1;
                        new_it.next();
                    }
                }
            }
        }
        arena::give_nodes(scratch);
        self.journal = j;
    }
}

impl Clone for MutableGraph {
    fn clone(&self) -> Self {
        let base = match &self.base {
            BaseStore::Shared { offsets, neighbors } => {
                BaseStore::Shared { offsets: Arc::clone(offsets), neighbors: Arc::clone(neighbors) }
            }
            BaseStore::Owned { offsets, neighbors } => {
                let mut o = arena::take_offsets();
                o.extend_from_slice(offsets);
                let mut nb = arena::take_nodes();
                nb.extend_from_slice(neighbors);
                BaseStore::Owned { offsets: o, neighbors: nb }
            }
        };
        let mut active = arena::take_flags();
        active.extend_from_slice(&self.active);
        let mut slab = arena::take_nodes();
        slab.extend_from_slice(&self.slab);
        Self {
            base,
            rows: self.rows.clone(),
            slab,
            overlay_entries: self.overlay_entries,
            compact_threshold: self.compact_threshold,
            auto_threshold: self.auto_threshold,
            edge_count: self.edge_count,
            active,
            active_count: self.active_count,
            journal: self.journal.clone(),
            tracking: self.tracking,
            sorted: self.sorted,
        }
    }
}

impl Drop for MutableGraph {
    fn drop(&mut self) {
        arena::give_flags(std::mem::take(&mut self.active));
        arena::give_nodes(std::mem::take(&mut self.slab));
        std::mem::replace(&mut self.base, BaseStore::hollow()).recycle();
    }
}

/// Logical equality: same node set, activation flags, and per-node
/// adjacency — independent of base/overlay layout or compaction state.
impl PartialEq for MutableGraph {
    fn eq(&self, other: &Self) -> bool {
        self.node_count() == other.node_count()
            && self.edge_count == other.edge_count
            && self.active == other.active
            && (0..self.node_count() as Node).all(|v| self.neighbors(v) == other.neighbors(v))
    }
}

impl Eq for MutableGraph {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn from_graph_round_trips() {
        let g = generators::hypercube(4);
        let net = MutableGraph::from_graph(&g);
        assert_eq!(net.node_count(), g.node_count());
        assert_eq!(net.edge_count(), g.edge_count());
        assert_eq!(net.to_graph(), g);
        for v in g.nodes() {
            assert_eq!(net.neighbors(v), g.neighbors(v));
            assert_eq!(net.degree(v), g.degree(v));
        }
    }

    #[test]
    fn untouched_adapter_samples_like_csr() {
        // The parity property the dynamic engine's churn-0 guarantee
        // rests on: identical draw sequence, identical neighbor choice.
        let g = generators::gnp_connected(32, 0.2, &mut Xoshiro256PlusPlus::seed_from(5), 100);
        let net = MutableGraph::from_graph(&g);
        let mut a = Xoshiro256PlusPlus::seed_from(9);
        let mut b = Xoshiro256PlusPlus::seed_from(9);
        for v in g.nodes() {
            for _ in 0..16 {
                assert_eq!(g.random_neighbor(v, &mut a), net.random_neighbor(v, &mut b));
            }
        }
    }

    #[test]
    fn add_and_remove_maintain_invariants() {
        let mut net = MutableGraph::from_graph(&generators::cycle(5));
        assert!(net.remove_edge(0, 1));
        assert!(!net.remove_edge(0, 1), "second removal is a no-op");
        assert!(!net.has_edge(0, 1) && !net.has_edge(1, 0));
        assert!(net.add_edge(0, 2));
        assert!(!net.add_edge(2, 0), "duplicate insert is a no-op");
        assert_eq!(net.edge_count(), 5);
        for v in 0..5u32 {
            let list = net.neighbors(v);
            assert!(list.windows(2).all(|w| w[0] < w[1]), "unsorted at {v}");
            assert_eq!(list.len(), net.degree(v));
            for &w in list {
                assert!(net.has_edge(w, v), "asymmetry {v}-{w}");
            }
        }
    }

    #[test]
    fn relaxed_order_preserves_sets_counts_and_symmetry() {
        let g = generators::gnp_connected(24, 0.25, &mut Xoshiro256PlusPlus::seed_from(3), 100);
        let mut relaxed = MutableGraph::from_graph(&g);
        relaxed.relax_neighbor_order();
        let mut sorted = MutableGraph::from_graph(&g);
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        for _ in 0..400 {
            let u = rng.range_usize(24) as Node;
            let v = rng.range_usize(24) as Node;
            if u == v {
                continue;
            }
            if relaxed.has_edge(u, v) {
                assert!(relaxed.remove_edge(u, v) && sorted.remove_edge(u, v));
            } else {
                assert!(relaxed.add_edge(u, v) && sorted.add_edge(u, v));
            }
        }
        assert_eq!(relaxed.edge_count(), sorted.edge_count());
        for v in 0..24u32 {
            let mut a = relaxed.neighbors(v).to_vec();
            a.sort_unstable();
            assert_eq!(a, sorted.neighbors(v), "neighbor set diverged at {v}");
            for &w in relaxed.neighbors(v) {
                assert!(relaxed.has_edge(w, v), "asymmetry {v}-{w}");
            }
        }
        // Freezing canonicalizes: both modes yield the same CSR.
        assert_eq!(relaxed.to_graph(), sorted.to_graph());
        // Deactivation strips via the relaxed path too.
        let d = relaxed.degree(5);
        assert_eq!(relaxed.deactivate(5), d);
        assert_eq!(sorted.deactivate(5), d);
        assert_eq!(relaxed.to_graph(), sorted.to_graph());
    }

    #[test]
    fn slide_edge_moves_rejects_and_journals_in_both_modes() {
        for relax in [false, true] {
            let mut net = MutableGraph::from_graph(&generators::cycle(6));
            if relax {
                net.relax_neighbor_order();
            }
            net.track_changes(true);
            // 0-1 slides to 0-3: present edge moves, symmetry holds.
            assert!(net.slide_edge(0, 1, 3), "mode relax={relax}");
            assert!(!net.has_edge(0, 1) && net.has_edge(0, 3) && net.has_edge(3, 0));
            assert_eq!(net.edge_count(), 6);
            assert_eq!(
                net.changes(),
                &[GraphChange::EdgeRemoved(0, 1), GraphChange::EdgeAdded(0, 3)]
            );
            // Occupied-pair rejection: 0-5 exists, so 0-3 cannot slide
            // onto it — and nothing changes.
            net.clear_changes();
            assert!(!net.slide_edge(0, 3, 5), "mode relax={relax}");
            assert!(net.has_edge(0, 3) && net.has_edge(0, 5));
            assert!(net.changes().is_empty());
            // The result is the same topology in either mode.
            let mut nbrs = net.neighbors(0).to_vec();
            nbrs.sort_unstable();
            assert_eq!(nbrs, vec![3, 5]);
        }
    }

    #[test]
    fn add_edge_unchecked_matches_checked_add() {
        for relax in [false, true] {
            let mut a = MutableGraph::from_graph(&generators::cycle(5));
            let mut b = a.clone();
            if relax {
                a.relax_neighbor_order();
                b.relax_neighbor_order();
            }
            assert!(a.add_edge(0, 2));
            b.add_edge_unchecked(0, 2);
            assert_eq!(a, b, "mode relax={relax}");
        }
    }

    #[test]
    fn relaxed_order_journal_matches_sorted_mode_as_sets() {
        let g = generators::cycle(8);
        let run = |relax: bool| {
            let mut net = MutableGraph::from_graph(&g);
            if relax {
                net.relax_neighbor_order();
            }
            net.track_changes(true);
            net.remove_edge(0, 1);
            net.add_edge(0, 4);
            net.replace_edges_with(&generators::star(8));
            let mut j = net.changes().to_vec();
            j.sort_unstable_by_key(|c| match *c {
                GraphChange::EdgeAdded(u, v) => (0, u, v),
                GraphChange::EdgeRemoved(u, v) => (1, u, v),
                GraphChange::NodeDeactivated(v) => (2, v, 0),
                GraphChange::NodeActivated(v) => (3, v, 0),
            });
            j
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn deactivate_strips_edges_and_activate_restores_participation() {
        let mut net = MutableGraph::from_graph(&generators::star(6));
        assert_eq!(net.deactivate(0), 5, "center loses all spokes");
        assert_eq!(net.edge_count(), 0);
        assert!(!net.is_active(0));
        assert_eq!(net.active_count(), 5);
        assert_eq!(net.deactivate(0), 0, "repeat is a no-op");
        net.activate(0);
        assert!(net.is_active(0));
        assert_eq!(net.degree(0), 0, "reactivation does not restore edges");
        assert!(net.add_edge(0, 1));
        assert_eq!(net.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "inactive")]
    fn wiring_an_inactive_node_panics() {
        let mut net = MutableGraph::from_graph(&generators::path(3));
        net.deactivate(2);
        net.add_edge(1, 2);
    }

    #[test]
    fn replace_edges_respects_activation() {
        let mut net = MutableGraph::from_graph(&generators::cycle(6));
        net.deactivate(3);
        net.replace_edges_with(&generators::complete(6));
        assert!(!net.is_active(3));
        assert_eq!(net.degree(3), 0);
        // K6 minus node 3: a K5 on the remaining nodes.
        assert_eq!(net.edge_count(), 10);
        for v in [0u32, 1, 2, 4, 5] {
            assert_eq!(net.degree(v), 4);
            assert!(!net.has_edge(v, 3));
        }
    }

    #[test]
    fn replace_with_all_active_adopts_the_snapshot() {
        let mut net = MutableGraph::from_graph(&generators::cycle(6));
        net.remove_edge(0, 1);
        let k6 = generators::complete(6);
        net.replace_edges_with(&k6);
        assert_eq!(net.edge_count(), 15);
        assert_eq!(net.to_graph(), k6);
    }

    #[test]
    fn empty_graph_accumulates_edges() {
        let mut net = MutableGraph::empty(4);
        assert_eq!(net.edge_count(), 0);
        assert!(net.add_edge(0, 1));
        assert!(net.add_edge(2, 3));
        assert_eq!(net.to_graph().edge_count(), 2);
    }

    /// Regression (flat-memory refactor): the overlay view must stay
    /// consistent with `active` under the `empty` + node-churn
    /// interplay — a deactivated node's `degree()`/`neighbors()` must
    /// never leak stale adjacency, whatever the storage holds.
    #[test]
    fn deactivated_views_are_empty_even_from_empty_construction() {
        let mut net = MutableGraph::empty(5);
        net.add_edge(0, 1);
        net.add_edge(0, 2);
        net.add_edge(1, 2);
        assert_eq!(net.deactivate(0), 2);
        assert_eq!(net.degree(0), 0, "stale degree on a deactivated node");
        assert_eq!(net.neighbors(0), &[] as &[Node], "stale adjacency on a deactivated node");
        assert!(!net.has_edge(0, 1) && !net.has_edge(1, 0));
        assert_eq!(net.neighbors(1), &[2]);
        // Reactivate, churn again: views stay coherent.
        net.activate(0);
        assert_eq!(net.degree(0), 0);
        assert!(net.add_edge(0, 3));
        assert_eq!(net.neighbors(0), &[3]);
        assert_eq!(net.edge_count(), 2);
    }

    /// Compaction is logically invisible: same views, same draws.
    #[test]
    fn compaction_preserves_views_and_draws() {
        let g = generators::gnp_connected(24, 0.3, &mut Xoshiro256PlusPlus::seed_from(3), 100);
        let mut eager = MutableGraph::from_graph(&g);
        eager.set_compaction_threshold(0); // compact after every mutation
        let mut lazy = MutableGraph::from_graph(&g);
        lazy.set_compaction_threshold(usize::MAX); // never compact
        let mut rng = Xoshiro256PlusPlus::seed_from(17);
        for _ in 0..300 {
            let u = rng.range_usize(24) as Node;
            let w = rng.range_usize(24) as Node;
            if u == w {
                continue;
            }
            if rng.range_usize(2) == 0 {
                assert_eq!(eager.add_edge(u, w), lazy.add_edge(u, w));
            } else {
                assert_eq!(eager.remove_edge(u, w), lazy.remove_edge(u, w));
            }
        }
        assert_eq!(eager, lazy, "divergent views");
        assert_eq!(eager.edge_count(), lazy.edge_count());
        let mut a = Xoshiro256PlusPlus::seed_from(29);
        let mut b = Xoshiro256PlusPlus::seed_from(29);
        for v in 0..24u32 {
            assert_eq!(eager.neighbors(v), lazy.neighbors(v));
            if eager.degree(v) > 0 {
                for _ in 0..8 {
                    assert_eq!(eager.random_neighbor(v, &mut a), lazy.random_neighbor(v, &mut b));
                }
            }
        }
    }

    #[test]
    fn change_journal_records_effective_mutations_only() {
        let mut net = MutableGraph::from_graph(&generators::cycle(4));
        net.track_changes(true);
        assert!(net.add_edge(0, 2));
        assert!(!net.add_edge(2, 0), "duplicate insert journals nothing");
        assert!(net.remove_edge(1, 2));
        assert!(!net.remove_edge(1, 2));
        net.deactivate(0);
        net.deactivate(0);
        net.activate(0);
        assert_eq!(
            net.changes(),
            &[
                GraphChange::EdgeAdded(0, 2),
                GraphChange::EdgeRemoved(1, 2),
                GraphChange::EdgeRemoved(0, 1),
                GraphChange::EdgeRemoved(0, 2),
                GraphChange::EdgeRemoved(0, 3),
                GraphChange::NodeDeactivated(0),
                GraphChange::NodeActivated(0),
            ]
        );
        net.clear_changes();
        assert!(net.changes().is_empty());
        // Compaction journals nothing: it is a layout change.
        net.set_compaction_threshold(0);
        assert!(net.changes().is_empty());
    }

    #[test]
    fn journal_covers_replace_edges_with() {
        let mut net = MutableGraph::from_graph(&generators::path(4)); // 0-1, 1-2, 2-3
        net.track_changes(true);
        net.replace_edges_with(&generators::cycle(4)); // 0-1, 1-2, 2-3, 0-3
        assert_eq!(net.changes(), &[GraphChange::EdgeAdded(0, 3)]);
    }

    #[test]
    fn clone_is_independent_and_equal() {
        let g = generators::gnp_connected(16, 0.3, &mut Xoshiro256PlusPlus::seed_from(8), 100);
        let mut net = MutableGraph::from_graph(&g);
        net.remove_edge(net.neighbors(0)[0], 0);
        let mut copy = net.clone();
        assert_eq!(copy, net);
        copy.deactivate(1);
        assert_ne!(copy, net, "clones must not share mutable state");
        assert!(net.is_active(1));
    }

    #[test]
    fn equality_is_logical_not_representational() {
        let g = generators::cycle(8);
        let mut a = MutableGraph::from_graph(&g);
        let mut b = MutableGraph::from_graph(&g);
        a.remove_edge(0, 1);
        a.add_edge(0, 1); // overlay round-trip: back to the start state
        b.set_compaction_threshold(0);
        b.remove_edge(2, 3);
        b.add_edge(2, 3); // compacted round-trip
        assert_eq!(a, b);
        assert_eq!(a, MutableGraph::from_graph(&g));
    }
}
