//! Mutable adjacency for dynamic-network simulation.
//!
//! The CSR [`Graph`](crate::Graph) is immutable by design; temporal-graph
//! engines need edges that appear and disappear while a protocol runs.
//! [`MutableGraph`] is the adapter between the two worlds: it is
//! initialized from a CSR snapshot, supports O(deg) edge insertion and
//! removal plus node activation flags (for join/leave churn), and keeps
//! adjacency lists **sorted** so that, until the first mutation, its
//! [`random_neighbor`](MutableGraph::random_neighbor) consumes the RNG
//! exactly like [`Graph::random_neighbor`] — the property that lets a
//! zero-churn dynamic run replay a static asynchronous run seed-for-seed.

use rumor_sim::rng::Xoshiro256PlusPlus;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Node};

/// An undirected simple graph under edit: sorted adjacency lists plus
/// per-node activation flags.
///
/// Inactive nodes keep their identity (indices are stable) but have all
/// incident edges removed and never gain new ones until reactivated.
///
/// # Example
///
/// ```
/// use rumor_graph::dynamic::MutableGraph;
/// use rumor_graph::generators;
///
/// let mut net = MutableGraph::from_graph(&generators::cycle(4));
/// assert_eq!(net.edge_count(), 4);
/// assert!(net.remove_edge(0, 1));
/// assert!(!net.has_edge(0, 1));
/// assert!(net.add_edge(0, 2));
/// assert_eq!(net.neighbors(0), &[2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutableGraph {
    adj: Vec<Vec<Node>>,
    edge_count: usize,
    active: Vec<bool>,
    active_count: usize,
}

impl MutableGraph {
    /// Copies a CSR snapshot into editable form; every node starts active.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let adj: Vec<Vec<Node>> = (0..n as Node).map(|v| g.neighbors(v).to_vec()).collect();
        Self { adj, edge_count: g.edge_count(), active: vec![true; n], active_count: n }
    }

    /// An edgeless graph on `n` active nodes.
    pub fn empty(n: usize) -> Self {
        Self { adj: vec![Vec::new(); n], edge_count: 0, active: vec![true; n], active_count: n }
    }

    /// Number of nodes (stable under all mutations).
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges currently present.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Current degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: Node) -> usize {
        self.adj[v as usize].len()
    }

    /// The sorted adjacency list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: Node) -> &[Node] {
        &self.adj[v as usize]
    }

    /// A uniformly random current neighbor of `v`, drawn exactly like
    /// [`Graph::random_neighbor`] (one `range_usize(deg)` call on a
    /// sorted list).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or currently isolated.
    #[inline]
    pub fn random_neighbor(&self, v: Node, rng: &mut Xoshiro256PlusPlus) -> Node {
        let nbrs = self.neighbors(v);
        assert!(!nbrs.is_empty(), "node {v} is isolated; protocols need degree >= 1");
        nbrs[rng.range_usize(nbrs.len())]
    }

    /// Whether the undirected edge `{u, v}` is currently present.
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Inserts the undirected edge `{u, v}`; returns `false` if it was
    /// already present (the graph is unchanged).
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, or inactive
    /// endpoints — topology models must not wire up departed nodes.
    pub fn add_edge(&mut self, u: Node, v: Node) -> bool {
        assert!(u != v, "self-loop at node {u}");
        assert!(
            (u as usize) < self.node_count() && (v as usize) < self.node_count(),
            "edge ({u}, {v}) out of range for {} nodes",
            self.node_count()
        );
        assert!(
            self.active[u as usize] && self.active[v as usize],
            "edge ({u}, {v}) touches an inactive node"
        );
        let Err(pos_u) = self.adj[u as usize].binary_search(&v) else {
            return false;
        };
        self.adj[u as usize].insert(pos_u, v);
        let pos_v =
            self.adj[v as usize].binary_search(&u).expect_err("adjacency must stay symmetric");
        self.adj[v as usize].insert(pos_v, u);
        self.edge_count += 1;
        true
    }

    /// Removes the undirected edge `{u, v}`; returns `false` if it was
    /// not present.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn remove_edge(&mut self, u: Node, v: Node) -> bool {
        let Ok(pos_u) = self.adj[u as usize].binary_search(&v) else {
            return false;
        };
        self.adj[u as usize].remove(pos_u);
        let pos_v = self.adj[v as usize].binary_search(&u).expect("adjacency must stay symmetric");
        self.adj[v as usize].remove(pos_v);
        self.edge_count -= 1;
        true
    }

    /// Whether `v` currently participates in the network.
    #[inline]
    pub fn is_active(&self, v: Node) -> bool {
        self.active[v as usize]
    }

    /// Number of active nodes.
    pub fn active_count(&self) -> usize {
        self.active_count
    }

    /// Deactivates `v`, removing all its incident edges; returns the
    /// number of edges removed. No-op (returning 0) if already inactive.
    pub fn deactivate(&mut self, v: Node) -> usize {
        if !self.active[v as usize] {
            return 0;
        }
        let nbrs = std::mem::take(&mut self.adj[v as usize]);
        for &w in &nbrs {
            let pos =
                self.adj[w as usize].binary_search(&v).expect("adjacency must stay symmetric");
            self.adj[w as usize].remove(pos);
        }
        self.edge_count -= nbrs.len();
        self.active[v as usize] = false;
        self.active_count -= 1;
        nbrs.len()
    }

    /// Reactivates `v` (with no edges; callers attach as their model
    /// dictates). No-op if already active.
    pub fn activate(&mut self, v: Node) {
        if !self.active[v as usize] {
            self.active[v as usize] = true;
            self.active_count += 1;
        }
    }

    /// Replaces the whole edge set with the edges of `snapshot`, keeping
    /// activation flags: edges touching inactive nodes are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot` has a different node count.
    pub fn replace_edges_with(&mut self, snapshot: &Graph) {
        assert_eq!(snapshot.node_count(), self.node_count(), "snapshot node count must match");
        for list in &mut self.adj {
            list.clear();
        }
        self.edge_count = 0;
        for v in snapshot.nodes() {
            if !self.active[v as usize] {
                continue;
            }
            let list: Vec<Node> = snapshot
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| self.active[w as usize])
                .collect();
            self.edge_count += list.len();
            self.adj[v as usize] = list;
        }
        // Each undirected edge was counted from both endpoints.
        self.edge_count /= 2;
    }

    /// Freezes the current topology into an immutable CSR [`Graph`]
    /// (inactive nodes appear as isolated).
    pub fn to_graph(&self) -> Graph {
        let mut b = GraphBuilder::with_edge_capacity(self.node_count(), self.edge_count);
        for (v, nbrs) in self.adj.iter().enumerate() {
            for &w in nbrs {
                if (v as Node) < w {
                    b.add_edge(v as Node, w);
                }
            }
        }
        b.build().expect("mutable graph upholds CSR invariants")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn from_graph_round_trips() {
        let g = generators::hypercube(4);
        let net = MutableGraph::from_graph(&g);
        assert_eq!(net.node_count(), g.node_count());
        assert_eq!(net.edge_count(), g.edge_count());
        assert_eq!(net.to_graph(), g);
        for v in g.nodes() {
            assert_eq!(net.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn untouched_adapter_samples_like_csr() {
        // The parity property the dynamic engine's churn-0 guarantee
        // rests on: identical draw sequence, identical neighbor choice.
        let g = generators::gnp_connected(32, 0.2, &mut Xoshiro256PlusPlus::seed_from(5), 100);
        let net = MutableGraph::from_graph(&g);
        let mut a = Xoshiro256PlusPlus::seed_from(9);
        let mut b = Xoshiro256PlusPlus::seed_from(9);
        for v in g.nodes() {
            for _ in 0..16 {
                assert_eq!(g.random_neighbor(v, &mut a), net.random_neighbor(v, &mut b));
            }
        }
    }

    #[test]
    fn add_and_remove_maintain_invariants() {
        let mut net = MutableGraph::from_graph(&generators::cycle(5));
        assert!(net.remove_edge(0, 1));
        assert!(!net.remove_edge(0, 1), "second removal is a no-op");
        assert!(!net.has_edge(0, 1) && !net.has_edge(1, 0));
        assert!(net.add_edge(0, 2));
        assert!(!net.add_edge(2, 0), "duplicate insert is a no-op");
        assert_eq!(net.edge_count(), 5);
        for v in 0..5u32 {
            let nbrs = net.neighbors(v);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted at {v}");
            for &w in nbrs {
                assert!(net.has_edge(w, v), "asymmetry {v}-{w}");
            }
        }
    }

    #[test]
    fn deactivate_strips_edges_and_activate_restores_participation() {
        let mut net = MutableGraph::from_graph(&generators::star(6));
        assert_eq!(net.deactivate(0), 5, "center loses all spokes");
        assert_eq!(net.edge_count(), 0);
        assert!(!net.is_active(0));
        assert_eq!(net.active_count(), 5);
        assert_eq!(net.deactivate(0), 0, "repeat is a no-op");
        net.activate(0);
        assert!(net.is_active(0));
        assert_eq!(net.degree(0), 0, "reactivation does not restore edges");
        assert!(net.add_edge(0, 1));
        assert_eq!(net.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "inactive")]
    fn wiring_an_inactive_node_panics() {
        let mut net = MutableGraph::from_graph(&generators::path(3));
        net.deactivate(2);
        net.add_edge(1, 2);
    }

    #[test]
    fn replace_edges_respects_activation() {
        let mut net = MutableGraph::from_graph(&generators::cycle(6));
        net.deactivate(3);
        net.replace_edges_with(&generators::complete(6));
        assert!(!net.is_active(3));
        assert_eq!(net.degree(3), 0);
        // K6 minus node 3: a K5 on the remaining nodes.
        assert_eq!(net.edge_count(), 10);
        for v in [0u32, 1, 2, 4, 5] {
            assert_eq!(net.degree(v), 4);
            assert!(!net.has_edge(v, 3));
        }
    }

    #[test]
    fn empty_graph_accumulates_edges() {
        let mut net = MutableGraph::empty(4);
        assert_eq!(net.edge_count(), 0);
        assert!(net.add_edge(0, 1));
        assert!(net.add_edge(2, 3));
        assert_eq!(net.to_graph().edge_count(), 2);
    }
}
