//! Plain-text edge-list serialization.
//!
//! Format: first non-comment line is `n m` (node and edge counts); each
//! subsequent line is an edge `u v`. Lines starting with `#` are comments.
//! This is the lingua franca accepted by most graph tools, so generated
//! instances can be inspected or exported.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;

/// Serializes a graph to edge-list text.
///
/// # Example
///
/// ```
/// use rumor_graph::{generators, io};
/// let g = generators::path(3);
/// let text = io::to_edge_list(&g);
/// let g2 = io::from_edge_list(&text)?;
/// assert_eq!(g, g2);
/// # Ok::<(), rumor_graph::GraphError>(())
/// ```
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + g.edge_count() * 8);
    out.push_str(&format!("{} {}\n", g.node_count(), g.edge_count()));
    for (u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Parses edge-list text produced by [`to_edge_list`] (or compatible).
///
/// # Errors
///
/// Returns [`GraphError::ParseEdgeList`] for malformed headers or edge
/// lines, and the usual construction errors for self-loops or
/// out-of-range endpoints.
pub fn from_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (line_no, header) = lines
        .next()
        .ok_or(GraphError::ParseEdgeList { line: 1, message: "missing header line".into() })?;
    let mut parts = header.split_whitespace();
    let parse_num = |tok: Option<&str>, line: usize| -> Result<u64, GraphError> {
        tok.ok_or(GraphError::ParseEdgeList { line, message: "expected two integers".into() })?
            .parse::<u64>()
            .map_err(|e| GraphError::ParseEdgeList { line, message: e.to_string() })
    };
    let n = parse_num(parts.next(), line_no)?;
    let m = parse_num(parts.next(), line_no)?;
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }

    let mut b = GraphBuilder::with_edge_capacity(n as usize, m as usize);
    let mut seen_edges = 0u64;
    for (line_no, line) in lines {
        let mut parts = line.split_whitespace();
        let u = parse_num(parts.next(), line_no)?;
        let v = parse_num(parts.next(), line_no)?;
        if parts.next().is_some() {
            return Err(GraphError::ParseEdgeList {
                line: line_no,
                message: "trailing tokens after edge".into(),
            });
        }
        b.try_add_edge(u, v)?;
        seen_edges += 1;
    }
    if seen_edges != m {
        return Err(GraphError::ParseEdgeList {
            line: 1,
            message: format!("header declared {m} edges but found {seen_edges}"),
        });
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_various_graphs() {
        for g in [
            generators::star(8),
            generators::cycle(5),
            generators::hypercube(3),
            generators::complete(6),
        ] {
            let text = to_edge_list(&g);
            let back = from_edge_list(&text).unwrap();
            assert_eq!(g, back);
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# a triangle\n\n3 3\n0 1\n# middle comment\n1 2\n0 2\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn missing_header_is_error() {
        assert!(matches!(from_edge_list("").unwrap_err(), GraphError::ParseEdgeList { .. }));
    }

    #[test]
    fn edge_count_mismatch_is_error() {
        let err = from_edge_list("3 5\n0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::ParseEdgeList { .. }));
        assert!(err.to_string().contains("declared 5"));
    }

    #[test]
    fn bad_tokens_are_errors() {
        assert!(from_edge_list("3 1\n0 x\n").is_err());
        assert!(from_edge_list("3 1\n0 1 9\n").is_err());
        assert!(from_edge_list("zzz\n").is_err());
    }

    #[test]
    fn self_loop_rejected() {
        assert_eq!(from_edge_list("3 1\n1 1\n").unwrap_err(), GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(
            from_edge_list("3 1\n0 3\n").unwrap_err(),
            GraphError::NodeOutOfRange { node: 3, node_count: 3 }
        );
    }

    #[test]
    fn zero_nodes_rejected() {
        assert_eq!(from_edge_list("0 0\n").unwrap_err(), GraphError::EmptyGraph);
    }
}
