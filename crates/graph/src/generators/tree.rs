//! Tree families: complete binary trees and caterpillars.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Node};

/// The complete binary tree on `n` nodes (heap layout: node `v` has
/// children `2v + 1` and `2v + 2`).
///
/// Logarithmic diameter with constant degree — a useful contrast to both
/// the star (constant diameter, giant degree) and the path.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete_binary_tree(n: usize) -> Graph {
    assert!(n >= 2, "tree needs n >= 2");
    let mut b = GraphBuilder::with_edge_capacity(n, n - 1);
    for v in 1..n {
        b.add_edge(v as Node, ((v - 1) / 2) as Node);
    }
    b.build().expect("n >= 2")
}

/// A caterpillar: a spine path of `spine` nodes, each carrying `legs`
/// leaves (`n = spine · (1 + legs)`).
///
/// # Panics
///
/// Panics if `spine < 2` or if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 2, "caterpillar needs spine >= 2");
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::with_edge_capacity(n, n - 1);
    for s in 0..spine - 1 {
        b.add_edge(s as Node, (s + 1) as Node);
    }
    // Leaves are laid out after the spine.
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            b.add_edge(s as Node, next as Node);
            next += 1;
        }
    }
    b.build().expect("n >= 2")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;

    #[test]
    fn binary_tree_shape() {
        let g = complete_binary_tree(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(6), 1);
        assert!(props::is_connected(&g));
        assert_eq!(props::diameter(&g), Some(4));
    }

    #[test]
    fn binary_tree_is_acyclic_sized() {
        for n in [2usize, 3, 10, 31, 100] {
            let g = complete_binary_tree(n);
            assert_eq!(g.edge_count(), n - 1);
            assert!(props::is_connected(&g));
        }
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(3, 2);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.degree(0), 1 + 2); // spine end: 1 spine + 2 legs
        assert_eq!(g.degree(1), 2 + 2); // middle: 2 spine + 2 legs
        assert!(props::is_connected(&g));
    }

    #[test]
    fn caterpillar_no_legs_is_path() {
        let g = caterpillar(5, 0);
        assert_eq!(g.node_count(), 5);
        assert_eq!(props::diameter(&g), Some(4));
    }
}
