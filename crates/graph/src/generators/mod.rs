//! Graph generators covering every family the PODC 2016 paper mentions.
//!
//! Deterministic families (star, path, cycle, complete, hypercube, torus,
//! trees, diamonds) take size parameters and always return the same graph.
//! Random families (`G(n,p)`, random regular, Chung–Lu, preferential
//! attachment) take an explicit RNG so experiments stay reproducible, and
//! have `*_connected` wrappers that retry until the sample is connected.
//!
//! | Paper reference | Generator |
//! |---|---|
//! | star example (§1): sync ≤ 2, async Θ(log n) | [`star`] |
//! | regular graphs for Corollary 3 | [`cycle`], [`torus`], [`hypercube`], [`random_regular`], [`complete`] |
//! | social-network topologies (§1) | [`chung_lu`], [`preferential_attachment`] |
//! | classical graphs (§1): both models within O(1) | [`hypercube`], [`gnp`], [`random_regular`], [`complete`] |
//! | Acan et al. sync-Θ(n^⅓)-vs-async-log separation | [`string_of_diamonds`] |
//! | push worst case (star-like, §1) | [`double_star`] |

mod basic;
mod diamonds;
mod hypercube;
mod lattice;
mod powerlaw;
mod random;
mod tree;

pub use basic::{broom, complete, cycle, double_star, path, star};
pub use diamonds::{diamond_parameters, necklace_of_cliques, string_of_diamonds};
pub use hypercube::hypercube;
pub use lattice::{grid, torus};
pub use powerlaw::{chung_lu, chung_lu_connected, chung_lu_giant, preferential_attachment};
pub use random::{gnm, gnp, gnp_connected, random_regular, random_regular_connected};
pub use tree::{caterpillar, complete_binary_tree};
