//! Heavy-tailed “social network” families: Chung–Lu and preferential
//! attachment.
//!
//! Section 1 of the paper motivates asynchrony with exactly these
//! topologies: on Chung–Lu power-law graphs (Fountoulakis–Panagiotou–
//! Sauerwald 2012) and preferential-attachment graphs (Doerr–Fouz–
//! Friedrich 2012), asynchronous push–pull informs a large fraction of the
//! nodes significantly faster than the synchronous protocol.

use rumor_sim::rng::Xoshiro256PlusPlus;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Node};
use crate::props;

/// Chung–Lu random graph with power-law expected degrees.
///
/// Node `i` gets weight `w_i = (avg_degree / c) · ((i + i₀)/n)^{−1/(β−1)}`
/// (with `c` normalizing the mean weight to `avg_degree` and
/// `i₀ = n^{1/(β−1)} · shift` keeping the maximum weight below the
/// `√(W)` threshold), and each edge `{i, j}` appears independently with
/// probability `min(w_i w_j / W, 1)`, `W = Σ w`.
///
/// Exponents `β ∈ (2, 3)` give the ultra-fast regime the paper cites.
///
/// The implementation enumerates all `O(n²)` pairs; intended for
/// `n ≤ ~20 000`, which covers every experiment in this workspace.
///
/// # Panics
///
/// Panics if `n < 2`, `β ≤ 2`, or `avg_degree <= 0`.
pub fn chung_lu(n: usize, beta: f64, avg_degree: f64, rng: &mut Xoshiro256PlusPlus) -> Graph {
    assert!(n >= 2, "chung_lu needs n >= 2");
    assert!(beta > 2.0, "beta must exceed 2 for a finite mean");
    assert!(avg_degree > 0.0, "avg_degree must be positive");
    let gamma = 1.0 / (beta - 1.0);
    // Raw weights ~ (n / (i + i0))^gamma with i0 damping the largest
    // weights so max(w) = O(n^gamma).
    let i0 = 1.0;
    let raw: Vec<f64> = (0..n).map(|i| (n as f64 / (i as f64 + i0)).powf(gamma)).collect();
    let raw_mean = raw.iter().sum::<f64>() / n as f64;
    let scale = avg_degree / raw_mean;
    let w: Vec<f64> = raw.iter().map(|r| r * scale).collect();
    let total: f64 = w.iter().sum();

    let mut b = GraphBuilder::with_edge_capacity(n, (avg_degree * n as f64 / 2.0) as usize + 16);
    for i in 0..n {
        for j in (i + 1)..n {
            let p = (w[i] * w[j] / total).min(1.0);
            if p > 0.0 && rng.f64_unit() < p {
                b.add_edge(i as Node, j as Node);
            }
        }
    }
    b.build().expect("n >= 2")
}

/// Chung–Lu conditioned on connectivity; isolated low-weight vertices are
/// common at small average degree, so this retries whole samples.
///
/// Beyond a few hundred nodes at moderate `avg_degree`, a fully connected
/// sample is vanishingly unlikely (expect `Θ(n·e^{−w_min})` isolated
/// vertices); use [`chung_lu_giant`] there, which is also what the
/// literature the paper cites studies.
///
/// # Panics
///
/// As [`chung_lu`], or if no connected sample appears within `max_tries`.
pub fn chung_lu_connected(
    n: usize,
    beta: f64,
    avg_degree: f64,
    rng: &mut Xoshiro256PlusPlus,
    max_tries: usize,
) -> Graph {
    for _ in 0..max_tries {
        let g = chung_lu(n, beta, avg_degree, rng);
        if props::is_connected(&g) {
            return g;
        }
    }
    panic!("no connected Chung-Lu(n={n}, beta={beta}, avg={avg_degree}) within {max_tries} tries");
}

/// The giant component of a Chung–Lu sample.
///
/// Samples [`chung_lu`] and extracts the largest connected component,
/// retrying until it covers at least `min_fraction` of the `n` vertices.
/// For `β ∈ (2, 3)` and `avg_degree ≳ 4` the giant component covers
/// almost all vertices, so a single draw nearly always suffices.
///
/// # Panics
///
/// As [`chung_lu`]; if `min_fraction ∉ (0, 1]`; or if 100 draws fail to
/// produce a big enough component (raise `avg_degree` in that case).
pub fn chung_lu_giant(
    n: usize,
    beta: f64,
    avg_degree: f64,
    min_fraction: f64,
    rng: &mut Xoshiro256PlusPlus,
) -> Graph {
    assert!(min_fraction > 0.0 && min_fraction <= 1.0, "min_fraction must be in (0, 1]");
    for _ in 0..100 {
        let g = chung_lu(n, beta, avg_degree, rng);
        let (giant, _) = props::largest_component(&g);
        if giant.node_count() as f64 >= min_fraction * n as f64 {
            return giant;
        }
    }
    panic!(
        "no Chung-Lu(n={n}, beta={beta}, avg={avg_degree}) giant component covering {min_fraction} of the graph in 100 draws"
    );
}

/// Barabási–Albert preferential attachment: starts from a star on `m + 1`
/// nodes, then each arriving node attaches `m` edges to *distinct* existing
/// nodes chosen with probability proportional to their degree.
///
/// Implemented with the repeated-endpoints list: sampling a uniform entry
/// of the endpoint list is exactly degree-proportional sampling. The
/// result is connected by construction and has `m·(n − m − 1) + m` edges
/// (the initial star contributes `m`).
///
/// # Panics
///
/// Panics if `m == 0` or `n ≤ m + 1`.
pub fn preferential_attachment(n: usize, m: usize, rng: &mut Xoshiro256PlusPlus) -> Graph {
    assert!(m >= 1, "attachment count m must be at least 1");
    assert!(n > m + 1, "need n > m + 1 seed nodes");
    let mut b = GraphBuilder::with_edge_capacity(n, m * n);
    // Endpoint list: every edge contributes both endpoints, so uniform
    // draws from it are degree-proportional.
    let mut endpoints: Vec<Node> = Vec::with_capacity(2 * m * n);
    // Seed: star on nodes 0..=m centred at 0 (connected, every node has
    // positive degree so attachment probabilities are well defined).
    for v in 1..=m {
        b.add_edge(0, v as Node);
        endpoints.push(0);
        endpoints.push(v as Node);
    }
    let mut targets: Vec<Node> = Vec::with_capacity(m);
    for v in (m + 1)..n {
        targets.clear();
        // Draw m distinct degree-proportional targets by rejection.
        while targets.len() < m {
            let t = endpoints[rng.range_usize(endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(v as Node, t);
            endpoints.push(v as Node);
            endpoints.push(t);
        }
    }
    b.build().expect("n >= 2")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from(seed)
    }

    #[test]
    fn chung_lu_average_degree_close_to_target() {
        let mut r = rng(1);
        let n = 600;
        let target = 8.0;
        let mut sum = 0.0;
        let reps = 5;
        for _ in 0..reps {
            sum += chung_lu(n, 2.5, target, &mut r).avg_degree();
        }
        let mean = sum / reps as f64;
        assert!(
            (mean - target).abs() < target * 0.25,
            "avg degree {mean} too far from target {target}"
        );
    }

    #[test]
    fn chung_lu_is_heavy_tailed() {
        let mut r = rng(2);
        let g = chung_lu(2000, 2.5, 6.0, &mut r);
        // Max degree should far exceed the average (power-law hubs).
        assert!(
            g.max_degree() as f64 > 4.0 * g.avg_degree(),
            "max {} vs avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn chung_lu_connected_works() {
        let mut r = rng(3);
        let g = chung_lu_connected(300, 2.5, 10.0, &mut r, 200);
        assert!(props::is_connected(&g));
    }

    #[test]
    fn chung_lu_giant_covers_most_nodes() {
        let mut r = rng(31);
        let n = 1500;
        let g = chung_lu_giant(n, 2.5, 8.0, 0.8, &mut r);
        assert!(g.node_count() >= (0.8 * n as f64) as usize);
        assert!(props::is_connected(&g));
        assert!(!g.has_isolated_nodes());
    }

    #[test]
    #[should_panic(expected = "min_fraction")]
    fn chung_lu_giant_validates_fraction() {
        chung_lu_giant(100, 2.5, 8.0, 0.0, &mut rng(32));
    }

    #[test]
    fn pa_edge_count_and_connectivity() {
        let mut r = rng(4);
        let n = 500;
        let m = 2;
        let g = preferential_attachment(n, m, &mut r);
        assert_eq!(g.node_count(), n);
        // Initial star has m edges; each of the n - m - 1 arrivals adds m.
        assert_eq!(g.edge_count(), m + m * (n - m - 1));
        assert!(props::is_connected(&g));
        assert!(g.min_degree() >= 1);
    }

    #[test]
    fn pa_m1_is_a_tree() {
        let mut r = rng(5);
        let n = 200;
        let g = preferential_attachment(n, 1, &mut r);
        assert_eq!(g.edge_count(), n - 1);
        assert!(props::is_connected(&g));
    }

    #[test]
    fn pa_has_hubs() {
        let mut r = rng(6);
        let g = preferential_attachment(2000, 2, &mut r);
        assert!(
            g.max_degree() > 5 * g.avg_degree() as usize,
            "expected hubs, max degree {}",
            g.max_degree()
        );
    }

    #[test]
    fn pa_deterministic_per_seed() {
        let g1 = preferential_attachment(100, 3, &mut rng(7));
        let g2 = preferential_attachment(100, 3, &mut rng(7));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "n > m + 1")]
    fn pa_rejects_tiny_n() {
        preferential_attachment(3, 2, &mut rng(8));
    }
}
