//! Elementary deterministic families: complete, star, path, cycle, and the
//! star-like worst cases for push-only spreading.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Node};

/// The complete graph `K_n`.
///
/// Sync push–pull informs everyone in `O(log n)` rounds; used as the
/// classical “both models within constants” baseline.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: usize) -> Graph {
    assert!(n >= 2, "complete graph needs n >= 2");
    let mut b = GraphBuilder::with_edge_capacity(n, n * (n - 1) / 2);
    for u in 0..n as Node {
        for v in (u + 1)..n as Node {
            b.add_edge(u, v);
        }
    }
    b.build().expect("n >= 2")
}

/// The star `S_n`: node 0 is the center, nodes `1..n` are leaves.
///
/// The paper's marquee example — synchronous push–pull finishes in at most
/// two rounds, while the asynchronous protocol needs `Θ(log n)` time —
/// which is exactly why Theorem 1 carries an additive `O(log n)` term.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs n >= 2");
    let mut b = GraphBuilder::with_edge_capacity(n, n - 1);
    for v in 1..n as Node {
        b.add_edge(0, v);
    }
    b.build().expect("n >= 2")
}

/// The path `P_n`: nodes `0..n` in a line.
///
/// Spreading time `Θ(n)` for both models — a worst case for diameter.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 2, "path needs n >= 2");
    let mut b = GraphBuilder::with_edge_capacity(n, n - 1);
    for v in 0..(n - 1) as Node {
        b.add_edge(v, v + 1);
    }
    b.build().expect("n >= 2")
}

/// The cycle `C_n` — the simplest 2-regular graph, used in Corollary 3's
/// regular-graph experiments.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs n >= 3");
    let mut b = GraphBuilder::with_edge_capacity(n, n);
    for v in 0..n as Node {
        b.add_edge(v, ((v as usize + 1) % n) as Node);
    }
    b.build().expect("n >= 3")
}

/// A double star: two adjacent centers with `left` and `right` leaves
/// respectively (`n = left + right + 2`).
///
/// On this graph synchronous push needs `Θ(k log k)` rounds (coupon
/// collector on the leaves) while push–pull needs `O(1)` — the canonical
/// non-regular family where pull matters, complementing Corollary 3's
/// statement that on *regular* graphs it does not.
///
/// # Panics
///
/// Panics if `left == 0` or `right == 0`.
pub fn double_star(left: usize, right: usize) -> Graph {
    assert!(left > 0 && right > 0, "double star needs leaves on both sides");
    let n = left + right + 2;
    let mut b = GraphBuilder::with_edge_capacity(n, n - 1);
    let c0: Node = 0;
    let c1: Node = 1;
    b.add_edge(c0, c1);
    for i in 0..left {
        b.add_edge(c0, (2 + i) as Node);
    }
    for i in 0..right {
        b.add_edge(c1, (2 + left + i) as Node);
    }
    b.build().expect("n >= 4")
}

/// A broom: a path of `handle` nodes whose far end carries `bristles`
/// leaves (`n = handle + bristles`). Mixes diameter-bound spreading with a
/// star-like finish.
///
/// # Panics
///
/// Panics if `handle == 0` or `bristles == 0`.
pub fn broom(handle: usize, bristles: usize) -> Graph {
    assert!(handle > 0 && bristles > 0, "broom needs a handle and bristles");
    let n = handle + bristles;
    let mut b = GraphBuilder::with_edge_capacity(n, n - 1);
    for v in 0..handle.saturating_sub(1) as Node {
        b.add_edge(v, v + 1);
    }
    let hub = (handle - 1) as Node;
    for i in 0..bristles {
        b.add_edge(hub, (handle + i) as Node);
    }
    b.build().expect("n >= 2")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;

    #[test]
    fn complete_graph_shape() {
        let g = complete(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.regular_degree(), Some(4));
        assert!(props::is_connected(&g));
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 1);
            assert_eq!(g.neighbors(v), &[0]);
        }
        assert!(props::is_connected(&g));
    }

    #[test]
    fn path_shape() {
        let g = path(4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(props::diameter(&g), Some(3));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.regular_degree(), Some(2));
        assert_eq!(props::diameter(&g), Some(3));
    }

    #[test]
    fn cycle_of_three_is_triangle() {
        let g = cycle(3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn double_star_shape() {
        let g = double_star(3, 4);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.degree(0), 4); // 3 leaves + other center
        assert_eq!(g.degree(1), 5); // 4 leaves + other center
        assert!(props::is_connected(&g));
        assert_eq!(props::diameter(&g), Some(3));
    }

    #[test]
    fn broom_shape() {
        let g = broom(4, 3);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.degree(3), 1 + 3); // hub: path predecessor + bristles
        assert!(props::is_connected(&g));
        assert_eq!(props::diameter(&g), Some(4));
    }

    #[test]
    fn broom_with_unit_handle_is_star() {
        let g = broom(1, 5);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.degree(0), 5);
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn star_rejects_tiny() {
        star(1);
    }
}
