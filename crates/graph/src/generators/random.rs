//! Random graph families: Erdős–Rényi and random regular graphs.

use rumor_sim::rng::Xoshiro256PlusPlus;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Node};
use crate::props;

/// Erdős–Rényi `G(n, p)`: each of the `n(n−1)/2` possible edges appears
/// independently with probability `p`.
///
/// Uses geometric skipping (Batagelj–Brandes), so generation costs
/// `O(n + m)` rather than `O(n²)`.
///
/// # Panics
///
/// Panics if `n < 2` or `p ∉ [0, 1]`.
pub fn gnp(n: usize, p: f64, rng: &mut Xoshiro256PlusPlus) -> Graph {
    assert!(n >= 2, "gnp needs n >= 2");
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut b = GraphBuilder::with_edge_capacity(n, (p * (n * (n - 1) / 2) as f64) as usize + 16);
    if p == 0.0 {
        return b.build().expect("n >= 2");
    }
    if p == 1.0 {
        for u in 0..n as Node {
            for v in (u + 1)..n as Node {
                b.add_edge(u, v);
            }
        }
        return b.build().expect("n >= 2");
    }
    // Enumerate candidate edges 0..n(n-1)/2 in lexicographic (u, v) order,
    // skipping ahead by Geometric(p) jumps.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    while (v as usize) < n {
        let r = rng.f64_open();
        w += 1 + (r.ln() / log_q).floor() as i64;
        while w >= v && (v as usize) < n {
            w -= v;
            v += 1;
        }
        if (v as usize) < n {
            b.add_edge(w as Node, v as Node);
        }
    }
    b.build().expect("n >= 2")
}

/// `G(n, p)` conditioned on connectivity: resamples until connected.
///
/// # Panics
///
/// Panics if `n < 2`, `p ∉ [0, 1]`, or no connected sample is found within
/// `max_tries` attempts (pick `p ≥ (1 + ε) ln n / n` to make success
/// overwhelmingly likely).
pub fn gnp_connected(n: usize, p: f64, rng: &mut Xoshiro256PlusPlus, max_tries: usize) -> Graph {
    for _ in 0..max_tries {
        let g = gnp(n, p, rng);
        if props::is_connected(&g) {
            return g;
        }
    }
    panic!("no connected G({n}, {p}) sample within {max_tries} tries");
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges, uniformly at random.
///
/// # Panics
///
/// Panics if `n < 2` or `m` exceeds `n(n−1)/2`.
pub fn gnm(n: usize, m: usize, rng: &mut Xoshiro256PlusPlus) -> Graph {
    assert!(n >= 2, "gnm needs n >= 2");
    let max_edges = n * (n - 1) / 2;
    assert!(m <= max_edges, "m = {m} exceeds {max_edges}");
    let mut b = GraphBuilder::with_edge_capacity(n, m);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    while chosen.len() < m {
        let u = rng.range_usize(n) as Node;
        let v = rng.range_usize(n) as Node;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build().expect("n >= 2")
}

/// A random `d`-regular graph via the Steger–Wormald pairing algorithm.
///
/// Stubs (node copies) are paired incrementally, always choosing a
/// uniformly random *valid* pair (no self-loop, no parallel edge); if the
/// process gets stuck with only invalid pairs remaining, it restarts.
/// For `d = o(n^{1/3})` the output distribution is asymptotically uniform
/// over `d`-regular graphs (Steger & Wormald 1999), and restarts are rare
/// — unlike naive whole-matching rejection, whose acceptance probability
/// `≈ e^{-(d²−1)/4}` collapses already at `d ≈ 7`.
///
/// # Panics
///
/// Panics if `n·d` is odd, `d == 0`, `d ≥ n`, or the process failed to
/// complete within `max_tries` restarts (effectively impossible for the
/// parameter ranges above).
pub fn random_regular(n: usize, d: usize, rng: &mut Xoshiro256PlusPlus, max_tries: usize) -> Graph {
    assert!(d >= 1, "degree must be at least 1");
    assert!(d < n, "degree must be below n");
    assert!((n * d).is_multiple_of(2), "n * d must be even");
    let mut stubs: Vec<Node> = Vec::with_capacity(n * d);
    'attempt: for _ in 0..max_tries {
        stubs.clear();
        for v in 0..n as Node {
            for _ in 0..d {
                stubs.push(v);
            }
        }
        let mut seen = std::collections::HashSet::with_capacity(n * d);
        let mut b = GraphBuilder::with_edge_capacity(n, n * d / 2);
        let mut live = stubs.len();
        while live > 0 {
            // Try random stub pairs; after enough consecutive failures,
            // scan exhaustively to decide between "unlucky" and "stuck".
            let mut found = false;
            for _ in 0..50 {
                let i = rng.range_usize(live);
                let j = rng.range_usize(live);
                let (u, v) = (stubs[i], stubs[j]);
                if i == j || u == v {
                    continue;
                }
                let key = if u < v { (u, v) } else { (v, u) };
                if seen.contains(&key) {
                    continue;
                }
                seen.insert(key);
                b.add_edge(key.0, key.1);
                // Swap-remove both stubs (larger index first).
                let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                stubs.swap(hi, live - 1);
                stubs.swap(lo, live - 2);
                live -= 2;
                found = true;
                break;
            }
            if found {
                continue;
            }
            // Exhaustive scan for any valid pair among the remaining stubs.
            let mut valid = None;
            'scan: for i in 0..live {
                for j in (i + 1)..live {
                    let (u, v) = (stubs[i], stubs[j]);
                    if u == v {
                        continue;
                    }
                    let key = if u < v { (u, v) } else { (v, u) };
                    if !seen.contains(&key) {
                        valid = Some((i, j, key));
                        break 'scan;
                    }
                }
            }
            match valid {
                Some((i, j, key)) => {
                    seen.insert(key);
                    b.add_edge(key.0, key.1);
                    let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                    stubs.swap(hi, live - 1);
                    stubs.swap(lo, live - 2);
                    live -= 2;
                }
                None => continue 'attempt, // genuinely stuck: restart
            }
        }
        return b.build().expect("n >= 2");
    }
    panic!("no simple {d}-regular pairing on {n} nodes within {max_tries} tries");
}

/// Random `d`-regular conditioned on connectivity.
///
/// For `d ≥ 3` a random regular graph is connected with probability
/// `1 − O(n^{2−d})`, so retries are rare.
///
/// # Panics
///
/// As [`random_regular`], or if no connected sample appears within
/// `max_tries`.
pub fn random_regular_connected(
    n: usize,
    d: usize,
    rng: &mut Xoshiro256PlusPlus,
    max_tries: usize,
) -> Graph {
    for _ in 0..max_tries {
        let g = random_regular(n, d, rng, max_tries);
        if props::is_connected(&g) {
            return g;
        }
    }
    panic!("no connected {d}-regular graph on {n} nodes within {max_tries} tries");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from(seed)
    }

    #[test]
    fn gnp_extremes() {
        let mut r = rng(1);
        let empty = gnp(10, 0.0, &mut r);
        assert_eq!(empty.edge_count(), 0);
        let full = gnp(10, 1.0, &mut r);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut r = rng(2);
        let n = 200;
        let p = 0.1;
        let mut total = 0usize;
        let reps = 20;
        for _ in 0..reps {
            total += gnp(n, p, &mut r).edge_count();
        }
        let mean = total as f64 / reps as f64;
        let expected = p * (n * (n - 1) / 2) as f64;
        assert!((mean - expected).abs() < expected * 0.05, "mean {mean} vs expected {expected}");
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let g1 = gnp(50, 0.2, &mut rng(42));
        let g2 = gnp(50, 0.2, &mut rng(42));
        assert_eq!(g1, g2);
    }

    #[test]
    fn gnp_connected_succeeds_above_threshold() {
        let mut r = rng(3);
        let n = 128;
        let p = 2.0 * (n as f64).ln() / n as f64;
        let g = gnp_connected(n, p, &mut r, 100);
        assert!(props::is_connected(&g));
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut r = rng(4);
        let g = gnm(30, 100, &mut r);
        assert_eq!(g.edge_count(), 100);
        assert_eq!(g.node_count(), 30);
    }

    #[test]
    fn gnm_full_graph() {
        let mut r = rng(5);
        let g = gnm(6, 15, &mut r);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.regular_degree(), Some(5));
    }

    #[test]
    fn random_regular_degrees() {
        let mut r = rng(6);
        for d in [2usize, 3, 4, 7] {
            let g = random_regular(50, d, &mut r, 1000);
            assert_eq!(g.regular_degree(), Some(d), "d = {d}");
            assert_eq!(g.edge_count(), 50 * d / 2);
        }
    }

    #[test]
    fn random_regular_connected_for_d3() {
        let mut r = rng(7);
        let g = random_regular_connected(100, 3, &mut r, 1000);
        assert_eq!(g.regular_degree(), Some(3));
        assert!(props::is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn random_regular_rejects_odd_total() {
        random_regular(5, 3, &mut rng(8), 10);
    }

    #[test]
    fn random_regular_varies_with_seed() {
        let g1 = random_regular(40, 3, &mut rng(9), 1000);
        let g2 = random_regular(40, 3, &mut rng(10), 1000);
        assert_ne!(g1, g2, "different seeds should give different graphs");
    }
}
