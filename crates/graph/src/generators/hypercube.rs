//! The `d`-dimensional hypercube.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Node};

/// The hypercube `Q_d` on `2^d` nodes; nodes are adjacent iff their labels
/// differ in exactly one bit. `d`-regular, diameter `d`.
///
/// On the hypercube the asynchronous push–pull protocol coincides with
/// Richardson's growth model, the first-passage-percolation setting the
/// paper cites (Fill & Pemantle 1993); experiment E14 compares the two.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 24` (2²⁴ nodes is past any experiment here).
pub fn hypercube(d: u32) -> Graph {
    assert!(d >= 1, "hypercube needs d >= 1");
    assert!(d <= 24, "hypercube of dimension {d} is too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::with_edge_capacity(n, n * d as usize / 2);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if v < w {
                b.add_edge(v as Node, w as Node);
            }
        }
    }
    b.build().expect("n >= 2")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;

    #[test]
    fn q3_shape() {
        let g = hypercube(3);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.regular_degree(), Some(3));
        assert_eq!(props::diameter(&g), Some(3));
    }

    #[test]
    fn q1_is_an_edge() {
        let g = hypercube(1);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn neighbors_differ_in_one_bit() {
        let g = hypercube(5);
        for v in g.nodes() {
            for &w in g.neighbors(v) {
                assert_eq!((v ^ w).count_ones(), 1);
            }
        }
    }

    #[test]
    fn diameter_is_dimension() {
        for d in 1..=6 {
            assert_eq!(props::diameter(&hypercube(d)), Some(d as usize));
        }
    }
}
