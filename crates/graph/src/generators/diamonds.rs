//! Separation gadgets: the Acan et al. “string of diamonds” and necklaces
//! of cliques.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Node};

/// A string of `k` diamonds, each with `m` parallel length-2 paths.
///
/// Hubs `h_0, …, h_k` are chained through diamonds: diamond `i` joins
/// `h_i` to `h_{i+1}` via `m` internal nodes, each adjacent to both hubs.
/// Total nodes: `(k + 1) + k·m`. Node `0` is hub `h_0`; use it as the
/// rumor source to force the rumor across all `k` diamonds.
///
/// This is the separation construction of Acan, Collevecchio, Mehrabian &
/// Wormald (PODC 2015), cited by the paper as the witness that its
/// Theorem 2 lower bound is within `Θ(n^{1/6})` of optimal: with
/// `k = n^{1/3}` and `m = n^{2/3}` the synchronous push–pull time is
/// `Θ(n^{1/3})` (each diamond costs at least one round), while the
/// asynchronous time is polylogarithmic (the minimum over `m` parallel
/// two-hop paths of a sum of two exponentials is `Θ(1/√m)`, and
/// `k/√m = Θ(1)`).
///
/// # Panics
///
/// Panics if `k == 0` or `m == 0`.
pub fn string_of_diamonds(k: usize, m: usize) -> Graph {
    assert!(k >= 1, "need at least one diamond");
    assert!(m >= 1, "need at least one internal path per diamond");
    let n = (k + 1) + k * m;
    let mut b = GraphBuilder::with_edge_capacity(n, 2 * k * m);
    // Hubs occupy 0..=k; internals follow.
    let hub = |i: usize| i as Node;
    let mut next = k + 1;
    for i in 0..k {
        for _ in 0..m {
            let x = next as Node;
            next += 1;
            b.add_edge(hub(i), x);
            b.add_edge(x, hub(i + 1));
        }
    }
    b.build().expect("n >= 2")
}

/// Suggests `(k, m)` with `k ≈ n^{1/3}` and `m ≈ n^{2/3}` so that
/// [`string_of_diamonds`] has close to `n` nodes — the parameterization
/// that exhibits the `Θ(n^{1/3})`-vs-`O(log n)` separation.
pub fn diamond_parameters(n: usize) -> (usize, usize) {
    let k = (n as f64).powf(1.0 / 3.0).round().max(1.0) as usize;
    let m = ((n as f64) / k as f64).round().max(1.0) as usize;
    (k, m)
}

/// A necklace of `k` cliques of size `s`, consecutive cliques joined by a
/// single bridge edge between designated port nodes.
///
/// Bridges are bottlenecks for both protocols; the family exercises
/// low-conductance behaviour (spreading time `Θ(k·s)`-ish for both
/// models), a useful contrast to the diamond gadget where asynchrony wins.
///
/// # Panics
///
/// Panics if `k == 0` or `s < 2`.
pub fn necklace_of_cliques(k: usize, s: usize) -> Graph {
    assert!(k >= 1, "need at least one clique");
    assert!(s >= 2, "cliques need at least two nodes");
    let n = k * s;
    let mut b = GraphBuilder::with_edge_capacity(n, k * s * (s - 1) / 2 + k);
    let base = |c: usize| (c * s) as Node;
    for c in 0..k {
        for i in 0..s {
            for j in (i + 1)..s {
                b.add_edge(base(c) + i as Node, base(c) + j as Node);
            }
        }
        if c + 1 < k {
            // Bridge: last node of clique c to first node of clique c+1.
            b.add_edge(base(c) + (s - 1) as Node, base(c + 1));
        }
    }
    b.build().expect("n >= 2")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;

    #[test]
    fn diamonds_shape() {
        let (k, m) = (3, 4);
        let g = string_of_diamonds(k, m);
        assert_eq!(g.node_count(), (k + 1) + k * m);
        assert_eq!(g.edge_count(), 2 * k * m);
        // End hubs have degree m; middle hubs 2m; internals 2.
        assert_eq!(g.degree(0), m);
        assert_eq!(g.degree(1), 2 * m);
        assert_eq!(g.degree(k as Node), m);
        assert_eq!(g.degree((k + 1) as Node), 2);
        assert!(props::is_connected(&g));
    }

    #[test]
    fn diamonds_diameter_is_2k() {
        let g = string_of_diamonds(5, 3);
        assert_eq!(props::diameter(&g), Some(10));
    }

    #[test]
    fn diamond_parameters_near_n() {
        for n in [100usize, 1000, 10_000] {
            let (k, m) = diamond_parameters(n);
            let actual = (k + 1) + k * m;
            assert!(
                (actual as f64 - n as f64).abs() < n as f64 * 0.25,
                "n={n} gave k={k}, m={m} => {actual}"
            );
        }
    }

    #[test]
    fn single_diamond() {
        let g = string_of_diamonds(1, 5);
        assert_eq!(g.node_count(), 7);
        assert!(!g.has_edge(0, 1), "hubs are only connected through internals");
    }

    #[test]
    fn necklace_shape() {
        let (k, s) = (4, 5);
        let g = necklace_of_cliques(k, s);
        assert_eq!(g.node_count(), k * s);
        assert_eq!(g.edge_count(), k * s * (s - 1) / 2 + (k - 1));
        assert!(props::is_connected(&g));
    }

    #[test]
    fn necklace_single_clique_is_complete() {
        let g = necklace_of_cliques(1, 4);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.regular_degree(), Some(3));
    }

    #[test]
    fn necklace_bridges_in_place() {
        let g = necklace_of_cliques(3, 3);
        assert!(g.has_edge(2, 3), "bridge clique0 -> clique1");
        assert!(g.has_edge(5, 6), "bridge clique1 -> clique2");
        assert!(!g.has_edge(0, 3));
    }
}
