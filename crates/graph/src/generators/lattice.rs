//! Two-dimensional lattices: grid (with boundary) and torus (regular).

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Node};

/// The `rows × cols` grid graph with open boundary.
///
/// # Panics
///
/// Panics if `rows * cols < 2`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows * cols >= 2, "grid needs at least two nodes");
    let id = |r: usize, c: usize| (r * cols + c) as Node;
    let mut b = GraphBuilder::with_edge_capacity(rows * cols, 2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build().expect("non-empty")
}

/// The `rows × cols` torus (wrap-around grid). For `rows, cols ≥ 3` this is
/// 4-regular, one of the regular families used by the Corollary 3
/// experiments.
///
/// # Panics
///
/// Panics if `rows < 3` or `cols < 3` (smaller wraps create parallel
/// edges).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs rows, cols >= 3");
    let id = |r: usize, c: usize| (r * cols + c) as Node;
    let mut b = GraphBuilder::with_edge_capacity(rows * cols, 2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols));
            b.add_edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // Edges: 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8 = 17.
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(1), 3); // edge
        assert_eq!(g.degree(5), 4); // interior
        assert!(props::is_connected(&g));
        assert_eq!(props::diameter(&g), Some(5));
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.regular_degree(), Some(4));
        assert_eq!(g.edge_count(), 40);
        assert!(props::is_connected(&g));
    }

    #[test]
    fn torus_wraps_around() {
        let g = torus(3, 3);
        // Node 0 = (0,0) connects to (0,2) and (2,0) via wraparound.
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 6));
    }

    #[test]
    fn grid_single_row_is_path() {
        let g = grid(1, 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(props::diameter(&g), Some(4));
    }

    #[test]
    #[should_panic(expected = "rows, cols >= 3")]
    fn torus_rejects_degenerate() {
        torus(2, 5);
    }
}
